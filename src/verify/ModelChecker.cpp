//===- verify/ModelChecker.cpp ---------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "verify/ModelChecker.h"

#include "support/Rng.h"
#include "support/StrUtil.h"
#include "verify/Canon.h"
#include "verify/FrontierBatch.h"
#include "verify/SearchCore.h"
#include "verify/Visited.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>

using namespace psketch;
using namespace psketch::verify;
using exec::ExecOutcome;
using exec::Machine;
using exec::State;
using exec::StepResult;
using exec::Violation;

std::string Counterexample::describe(const Machine &M) const {
  std::string Out = format("violation: %s (phase %d)\n", V.Label.c_str(),
                           static_cast<int>(Where));
  for (const TraceStep &S : Steps) {
    const flat::Step &St = M.bodyOf(S.Thread).Steps[S.Pc];
    Out += format("  T%u#%u: %s\n", S.Thread, S.Pc, St.Label.c_str());
  }
  for (const TraceStep &S : DeadlockSet)
    Out += format("  blocked T%u#%u\n", S.Thread, S.Pc);
  return Out;
}

unsigned psketch::verify::resolvedNumThreads(const CheckerConfig &Cfg) {
  if (Cfg.NumThreads != 0)
    return Cfg.NumThreads;
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

namespace {

class Checker {
public:
  Checker(const Machine &M, const CheckerConfig &Cfg, bool UseFalsifier)
      : M(M), Cfg(Cfg), UseFalsifier(UseFalsifier), Canon(makeCanon(M, Cfg)),
        Spill(Cfg.Store == VisitedStore::Spill
                  ? std::make_unique<detail::SpillStore>(Cfg.SpillDir)
                  : nullptr),
        Visited(Cfg, &hashWords,
                Canon && Canon->active() ? Canon.get() : nullptr,
                // A failed store (unwritable spill dir) is still handed
                // over: the cells see !ok() and waive the budget, so the
                // check degrades to Memory mode with no abort watermark
                // (CheckResult::SpillFallback) rather than failing.
                Spill.get()) {}

  CheckResult run();

private:
  /// The three search phases; run() wraps it to stamp the symmetry
  /// counters onto whichever Result it produced.
  CheckResult runSearch();

  /// Symmetry setup: under SymmetryMode::Orbit the canonicalizer is
  /// built per candidate (inference + table compilation, the cost
  /// surfaced as CanonTime); it is attached to the visited table only
  /// when a non-trivial orbit was proven.
  static std::unique_ptr<Canonicalizer> makeCanon(const Machine &M,
                                                  const CheckerConfig &Cfg) {
    if (Cfg.Symmetry != SymmetryMode::Orbit)
      return nullptr;
    return std::make_unique<Canonicalizer>(M);
  }

  /// Canonical state fingerprint for the DFS OnStack set. Under an
  /// active symmetry the cycle proviso must run in quotient-graph
  /// coordinates: a reduced expansion whose successor is a symmetric
  /// image of a stack state closes a quotient cycle even though the raw
  /// states differ, so the OnStack key has to be the canonical
  /// fingerprint the visited table deduped on (docs/SYMMETRY.md).
  uint64_t stateFp(const State &S) const {
    if (Canon && Canon->active()) {
      unsigned PermIdx = Canonicalizer::IdentityPerm;
      return M.fingerprintWords(Canon->canonicalize(S.words(), PermIdx));
    }
    return M.fingerprintState(S);
  }

  const Machine &M;
  const CheckerConfig &Cfg;
  bool UseFalsifier;
  CheckResult Result;
  std::unique_ptr<Canonicalizer> Canon; ///< before Visited: it aliases this
  std::unique_ptr<detail::SpillStore> Spill; ///< before Visited: aliased too
  detail::VisitedTable Visited;

  /// Exhaustive DFS, legacy copy-per-successor loop (UseUndoLog=false).
  /// \returns true if no violation is reachable (within the budget).
  bool dfs(const State &Start, Counterexample &Cex);

  /// Exhaustive DFS over ONE state mutated in place: each scheduling
  /// choice is applied with an attached undo log and reverted on
  /// backtrack, so a step costs O(changed words) instead of a full state
  /// copy. Operation order (local chain, dedup, classify, frame push) is
  /// identical to dfs(), so verdict, counterexample, and state counts
  /// match it exactly — tested by test_state_engine.cpp.
  bool dfsUndo(const State &Start, Counterexample &Cex);

  /// Exhaustive BFS with state dedup: finds shortest counterexamples.
  /// Keeps per-node copies (parent links need live states).
  bool bfs(const State &Start, Counterexample &Cex);

  /// Exhaustive DFS over SoA successor batches (BatchWidth >= 2;
  /// docs/BATCHING.md). Same reduction decisions and sleep protocol as
  /// dfs()/dfsUndo(); sibling successors are generated, canonicalized,
  /// fingerprinted and probed as one batch, so the visited table fills
  /// eagerly and the search-tree shape (hence which violation is found
  /// first, and the dedup-attribution split of the state counts) can
  /// differ from the scalar engines — the verdict cannot, and
  /// DeterministicCex restores the scalar trace.
  bool dfsBatched(const State &Start, Counterexample &Cex);
};

bool Checker::bfs(const State &Start, Counterexample &Cex) {
  // Search nodes keep parent links so counterexample paths can be
  // reconstructed without storing a path per node.
  struct Node {
    State S;
    int Parent = -1;
    std::vector<TraceStep> Steps; ///< steps taken from the parent
  };
  std::vector<Node> Nodes;

  const bool Ample = Cfg.Por == PorMode::Ample;
  const Canonicalizer *Cn = Canon && Canon->active() ? Canon.get() : nullptr;
  detail::FrontierBatch Batch; ///< BatchWidth >= 2: batched full expansion

  auto ReconstructTo = [&](int Index, std::vector<TraceStep> &Out) {
    std::vector<int> Chain;
    for (int I = Index; I >= 0; I = Nodes[I].Parent)
      Chain.push_back(I);
    Out.clear();
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It)
      Out.insert(Out.end(), Nodes[*It].Steps.begin(),
                 Nodes[*It].Steps.end());
  };

  // Enters a state: runs its local chain, dedups, appends a node.
  // Returns false if a counterexample was found.
  auto Enter = [&](State S, int Parent,
                   std::vector<TraceStep> Prefix) -> bool {
    std::vector<TraceStep> Chain = std::move(Prefix);
    Counterexample Local;
    std::vector<TraceStep> Scratch;
    if (!detail::advanceLocal(M, Cfg.Por, S, Scratch, Local)) {
      // Violation inside the local chain.
      ReconstructTo(Parent, Cex.Steps);
      Cex.Steps.insert(Cex.Steps.end(), Chain.begin(), Chain.end());
      Cex.Steps.insert(Cex.Steps.end(), Local.Steps.begin(),
                       Local.Steps.end());
      Cex.V = Local.V;
      Cex.Where = Local.Where;
      Cex.DeadlockSet = Local.DeadlockSet;
      return false;
    }
    Chain.insert(Chain.end(), Scratch.begin(), Scratch.end());
    if (!Visited.insert(M, S)) {
      ++Result.StatesDeduped;
      return true;
    }
    ++Result.StatesExplored;
    if (Result.StatesExplored >= Cfg.MaxStates || Visited.overBudget())
      Result.Exhausted = true;
    Node N;
    N.S = std::move(S);
    N.Parent = Parent;
    N.Steps = std::move(Chain);
    Nodes.push_back(std::move(N));
    return true;
  };

  if (!Enter(Start, -1, {}))
    return false;

  // Cross-parent successor pooling (BatchWidth >= 2): one parent yields
  // at most numThreads() children, far below a SIMD-profitable width on
  // the paper's 2-5-thread benchmarks, so full expansions are queued as
  // (parent, ctx) lanes and flushed through the SoA pipeline in
  // full-width batches spanning many parents. Lanes flush in FIFO
  // order, so children enter the visited table and the frontier in
  // exactly scalar BFS's order — the explored set, dedup decisions, and
  // node numbering are unchanged; only the moment a child enters the
  // table moves (docs/BATCHING.md).
  std::vector<std::pair<int, unsigned>> Pending;
  std::vector<const State *> PoolParents;
  std::vector<unsigned> PoolCtxs;

  // Flushes pooled lanes in batch-width sub-batches; a non-final flush
  // keeps the ragged tail pooled so only full-width batches run.
  auto Flush = [&](bool Final) -> bool {
    size_t At = 0;
    while (!Result.Exhausted &&
           (Pending.size() - At >= Cfg.BatchWidth ||
            (Final && At < Pending.size()))) {
      unsigned NGen = static_cast<unsigned>(
          std::min<size_t>(Cfg.BatchWidth, Pending.size() - At));
      PoolParents.resize(NGen);
      PoolCtxs.resize(NGen);
      for (unsigned I = 0; I < NGen; ++I) {
        PoolParents[I] = &Nodes[Pending[At + I].first].S;
        PoolCtxs[I] = Pending[At + I].second;
      }
      Counterexample GenCex;
      unsigned FailLane = 0;
      if (!Batch.generateMulti(M, Cfg.Por, PoolParents.data(),
                               PoolCtxs.data(), NGen, GenCex, FailLane)) {
        std::vector<TraceStep> Extra = std::move(GenCex.Steps);
        ReconstructTo(Pending[At + FailLane].first, Cex.Steps);
        Cex.Steps.insert(Cex.Steps.end(), Extra.begin(), Extra.end());
        Cex.V = GenCex.V;
        Cex.Where = GenCex.Where;
        Cex.DeadlockSet = GenCex.DeadlockSet;
        return false;
      }
      Batch.fingerprint(M, Cn, Visited.hashFn());
      Batch.probeMask(M, Visited);
      for (unsigned K = 0; K < NGen; ++K) {
        if (Batch.ins(K) != detail::InsertOutcome::Fresh) {
          ++Result.StatesDeduped;
          continue;
        }
        ++Result.StatesExplored;
        if (Result.StatesExplored >= Cfg.MaxStates || Visited.overBudget())
          Result.Exhausted = true;
        Node Child;
        Child.S = std::move(Batch.state(K));
        Child.Parent = Pending[At + K].first;
        Child.Steps = Batch.suffix(K);
        Nodes.push_back(std::move(Child));
      }
      At += NGen;
    }
    Pending.erase(Pending.begin(), Pending.begin() + At);
    return true;
  };

  for (size_t Head = 0; !Result.Exhausted; ++Head) {
    if (Head == Nodes.size()) {
      // Frontier drained; the pooled tail may extend it.
      if (Pending.empty())
        break;
      if (!Flush(/*Final=*/true))
        return false;
      if (Head == Nodes.size())
        break; // every pooled lane was a dup
    }
    std::vector<unsigned> Ready;
    std::vector<TraceStep> Blocked;
    std::vector<TraceStep> Path; // only needed on failure
    // Classify the STORED node: classifyAll normalizes every thread's pc
    // in place, and the pooled lanes expand from Nodes[Head].S later —
    // they must step from exactly the normalized state the scalar paths
    // step from, or children pick up differently-encoded pcs and the
    // visited keys (hence the explored set) diverge.
    if (!detail::classifyAll(M, Nodes[Head].S, Ready, Blocked, Path, Cex)) {
      std::vector<TraceStep> Extra = std::move(Cex.Steps);
      ReconstructTo(static_cast<int>(Head), Cex.Steps);
      Cex.Steps.insert(Cex.Steps.end(), Extra.begin(), Extra.end());
      return false;
    }
    if (Ready.empty()) {
      if (!Blocked.empty()) {
        ReconstructTo(static_cast<int>(Head), Cex.Steps);
        Cex.V.VKind = Violation::Kind::Deadlock;
        Cex.V.Label = "deadlock: all live threads blocked";
        Cex.Where = Counterexample::Phase::Parallel;
        Cex.DeadlockSet = Blocked;
        return false;
      }
      ReconstructTo(static_cast<int>(Head), Path);
      if (!detail::checkEpilogue(M, Nodes[Head].S, Path, Cex))
        return false;
      continue;
    }
    // Ample reduction with the BFS cycle proviso (C2): expand the
    // singleton alone only when its locally-advanced successor has NOT
    // been visited — on any cycle of the reduced graph the last state
    // expanded finds its successor in the table and expands fully, so no
    // thread is deferred forever around the cycle (docs/POR.md).
    if (Ample && Ready.size() >= 2) {
      int AI = detail::selectAmple(M, Nodes[Head].S, Ready);
      if (AI >= 0) {
        unsigned Ctx = Ready[AI];
        State Next = Nodes[Head].S; // copy: Enter() may reallocate Nodes
        Violation V;
        ExecOutcome Out = M.execStep(Next, Ctx, V);
        if (Out.Result == StepResult::Violated) {
          ReconstructTo(static_cast<int>(Head), Cex.Steps);
          Cex.Steps.push_back(TraceStep{Ctx, Out.ExecutedPc});
          Cex.V = V;
          Cex.Where = Counterexample::Phase::Parallel;
          return false;
        }
        assert(Out.Result == StepResult::Ok && "ready thread must step");
        std::vector<TraceStep> Prefix{TraceStep{Ctx, Out.ExecutedPc}};
        Counterexample Local;
        if (!detail::advanceLocal(M, Cfg.Por, Next, Prefix, Local)) {
          ReconstructTo(static_cast<int>(Head), Cex.Steps);
          Cex.Steps.insert(Cex.Steps.end(), Local.Steps.begin(),
                           Local.Steps.end());
          Cex.V = Local.V;
          Cex.Where = Local.Where;
          Cex.DeadlockSet = Local.DeadlockSet;
          return false;
        }
        if (!Visited.contains(M, Next)) {
          ++Result.AmpleStates;
          // Next is already in normal form, so Enter's own local chain
          // is a no-op and Prefix carries the full step sequence.
          if (!Enter(std::move(Next), static_cast<int>(Head),
                     std::move(Prefix)))
            return false;
          continue;
        }
        ++Result.FullExpansions; // proviso hit: fall through, expand all
      } else {
        ++Result.FullExpansions;
      }
    }
    if (Cfg.BatchWidth >= 2) {
      // Batched full expansion (docs/BATCHING.md): queue the ready
      // children as pooled lanes and flush whole batches — one
      // transpose, one (optional) orbit canonicalization, one
      // fingerprint sweep, one visited call per full-width batch.
      // Sleep masks are all zero in BFS, so the mask probe degenerates
      // to exactly Enter()'s Fresh/Prune dedup.
      for (unsigned Ctx : Ready)
        Pending.push_back({static_cast<int>(Head), Ctx});
      if (Pending.size() >= Cfg.BatchWidth && !Flush(/*Final=*/false))
        return false;
      continue;
    }
    // Scalar expansion copies the head out once: Enter() appends to
    // Nodes and may reallocate it. The pooled path above never needs a
    // copy at all — lanes read Nodes[Head].S by index at flush time.
    State S = Nodes[Head].S;
    for (unsigned Ctx : Ready) {
      State Next = S;
      Violation V;
      ExecOutcome Out = M.execStep(Next, Ctx, V);
      if (Out.Result == StepResult::Violated) {
        ReconstructTo(static_cast<int>(Head), Cex.Steps);
        Cex.Steps.push_back(TraceStep{Ctx, Out.ExecutedPc});
        Cex.V = V;
        Cex.Where = Counterexample::Phase::Parallel;
        return false;
      }
      assert(Out.Result == StepResult::Ok && "ready thread must step");
      if (!Enter(std::move(Next), static_cast<int>(Head),
                 {TraceStep{Ctx, Out.ExecutedPc}}))
        return false;
    }
  }
  return true;
}

// The DFS engines share their ample/sleep decision logic through this
// helper so dfs (copy) and dfsUndo (in-place) behave identically — the
// equivalence test of test_state_engine.cpp covers the reduced modes too.
namespace {

/// Per-frame POR bookkeeping common to both DFS engines.
struct PorFrame {
  uint64_t Sleep = 0;    ///< sleep mask the state was entered with
  uint64_t Branched = 0; ///< choices already expanded from this frame
  bool Reduced = false;  ///< singleton ample frame (C2 may upgrade it)
  std::vector<unsigned> Ready; ///< full ready set (kept for the upgrade)
  uint64_t Fp = 0;             ///< on-stack key for the cycle proviso
};

/// Decides what a freshly-entered state explores: a singleton ample set
/// when one qualifies, the full ready set otherwise, minus slept
/// contexts; or, for a Wake revisit, exactly the woken contexts. Fills
/// \p F (Sleep/Reduced/Ready) and returns the choice list; bumps the POR
/// counters on \p R.
std::vector<unsigned> planChoices(const Machine &M, State &S, bool Ample,
                                  std::vector<unsigned> Ready,
                                  uint64_t Sleep, bool IsWake, uint64_t Wake,
                                  PorFrame &F, CheckResult &R) {
  std::vector<unsigned> Choices;
  F.Sleep = Sleep;
  if (IsWake) {
    // Re-expansion of a partially-covered state: only the transitions a
    // prior visit slept through, as a plain (non-ample) frame.
    for (unsigned C : Ready)
      if (Wake & (1ull << C))
        Choices.push_back(C);
    F.Ready = std::move(Ready);
    return Choices;
  }
  int AmpleIdx = Ample ? detail::selectAmple(M, S, Ready) : -1;
  if (AmpleIdx >= 0) {
    F.Reduced = true;
    ++R.AmpleStates;
    Choices.push_back(Ready[AmpleIdx]);
  } else {
    Choices = Ready;
    if (Ample && Ready.size() >= 2)
      ++R.FullExpansions;
  }
  if (Sleep) {
    std::vector<unsigned> Kept;
    for (unsigned C : Choices) {
      if (Sleep & (1ull << C))
        ++R.SleepSkips;
      else
        Kept.push_back(C);
    }
    Choices = std::move(Kept);
  }
  F.Ready = std::move(Ready);
  return Choices;
}

/// The C2 cycle-proviso upgrade: the reduced frame's successor closed a
/// DFS-stack cycle, so the deferred contexts could be ignored forever
/// around it — append the rest of the (unslept) ready set after the
/// already-running singleton. (The thread-phase state graph is acyclic —
/// every Ok step advances some pc and normalization only increases them
/// — so this never fires in practice; it is kept because the reduction's
/// soundness must not depend on that structural accident.)
void upgradeToFull(PorFrame &F, std::vector<unsigned> &Choices,
                   CheckResult &R) {
  F.Reduced = false;
  --R.AmpleStates;
  ++R.FullExpansions;
  for (unsigned C : F.Ready) {
    if (C == Choices[0])
      continue;
    if (F.Sleep & (1ull << C))
      ++R.SleepSkips;
    else
      Choices.push_back(C);
  }
}

} // namespace

bool Checker::dfs(const State &Start, Counterexample &Cex) {
  struct Frame {
    State S;
    std::vector<unsigned> Choices;
    size_t NextChoice = 0;
    size_t PathLen = 0;
    PorFrame Por;
  };

  const bool Ample =
      Cfg.Por == PorMode::Ample && M.numThreads() <= detail::MaxSleepThreads;

  std::vector<Frame> Stack;
  std::vector<TraceStep> Path;
  std::unordered_map<uint64_t, unsigned> OnStack; ///< fp -> frames (Ample)

  // Pushes a state after running its local chain; handles terminal states.
  // Returns false if a counterexample was found.
  auto PushState = [&](State S, uint64_t Sleep) -> bool {
    if (!detail::advanceLocal(M, Cfg.Por, S, Path, Cex))
      return false;
    uint64_t Fp = 0;
    if (Ample) {
      Fp = stateFp(S);
      if (!Stack.empty() && Stack.back().Por.Reduced && OnStack.count(Fp))
        upgradeToFull(Stack.back().Por, Stack.back().Choices, Result);
    }
    uint64_t Wake = 0;
    detail::InsertOutcome Ins =
        Ample ? Visited.insertMask(M, S, Sleep, Wake)
              : (Visited.insert(M, S) ? detail::InsertOutcome::Fresh
                                      : detail::InsertOutcome::Prune);
    if (Ins == detail::InsertOutcome::Prune) {
      ++Result.StatesDeduped;
      return true; // already explored; not a counterexample
    }
    bool IsWake = Ins == detail::InsertOutcome::Wake;
    if (IsWake) {
      ++Result.StatesDeduped; // partially-covered revisit
    } else {
      ++Result.StatesExplored;
      if (Result.StatesExplored >= Cfg.MaxStates || Visited.overBudget())
        Result.Exhausted = true;
    }

    std::vector<unsigned> Ready;
    std::vector<TraceStep> Blocked;
    if (!detail::classifyAll(M, S, Ready, Blocked, Path, Cex))
      return false;
    if (Ready.empty()) {
      if (!Blocked.empty()) {
        Cex.Steps = Path;
        Cex.V.VKind = Violation::Kind::Deadlock;
        Cex.V.Label = "deadlock: all live threads blocked";
        Cex.Where = Counterexample::Phase::Parallel;
        Cex.DeadlockSet = Blocked;
        return false;
      }
      return detail::checkEpilogue(M, S, Path, Cex); // leaf: phase done
    }
    Frame F;
    F.Por.Fp = Fp;
    F.Choices = planChoices(M, S, Ample, std::move(Ready), Sleep, IsWake,
                            Wake, F.Por, Result);
    if (F.Choices.empty())
      return true; // every transition here is covered elsewhere (sleep)
    F.S = std::move(S);
    F.PathLen = Path.size();
    if (Ample)
      ++OnStack[F.Por.Fp];
    Stack.push_back(std::move(F));
    return true;
  };

  if (!PushState(Start, 0))
    return false;

  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.NextChoice >= Top.Choices.size() || Result.Exhausted) {
      if (Ample) {
        auto It = OnStack.find(Top.Por.Fp);
        if (--It->second == 0)
          OnStack.erase(It);
      }
      Stack.pop_back();
      if (!Stack.empty())
        Path.resize(Stack.back().PathLen);
      continue;
    }
    Path.resize(Top.PathLen);
    unsigned Ctx = Top.Choices[Top.NextChoice++];
    uint64_t ChildSleep = 0;
    if (Ample) {
      ChildSleep = detail::sleepAfter(M, Top.S, Ctx, Top.S.pc(Ctx),
                                      Top.Por.Sleep | Top.Por.Branched);
      Top.Por.Branched |= 1ull << Ctx;
    }
    State Next = Top.S;
    Violation V;
    ExecOutcome Out = M.execStep(Next, Ctx, V);
    if (Out.Result == StepResult::Violated) {
      Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
      Cex.Steps = Path;
      Cex.V = V;
      Cex.Where = Counterexample::Phase::Parallel;
      return false;
    }
    assert(Out.Result == StepResult::Ok && "chosen thread must step");
    Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
    if (!PushState(std::move(Next), ChildSleep))
      return false;
  }
  return true;
}

bool Checker::dfsUndo(const State &Start, Counterexample &Cex) {
  // A frame carries no state: the single search state S is reverted to
  // the frame's log mark before each of its scheduling choices.
  struct Frame {
    std::vector<unsigned> Choices;
    size_t NextChoice = 0;
    size_t PathLen = 0;
    exec::UndoLog::Mark Mark = 0;
    PorFrame Por;
  };

  const bool Ample =
      Cfg.Por == PorMode::Ample && M.numThreads() <= detail::MaxSleepThreads;

  std::vector<Frame> Stack;
  std::vector<TraceStep> Path;
  std::unordered_map<uint64_t, unsigned> OnStack; ///< fp -> frames (Ample)
  exec::UndoLog Log;
  State S = Start;
  S.attachLog(&Log);

  // Enters S in place: local chain, dedup, classification, terminal
  // handling; pushes a frame when there are scheduling choices. The
  // frame's mark is taken AFTER the local chain and pc normalization, so
  // reverting to it lands exactly on the entered (deduped) state.
  // Returns false if a counterexample was found.
  auto Enter = [&](uint64_t Sleep) -> bool {
    if (!detail::advanceLocal(M, Cfg.Por, S, Path, Cex))
      return false;
    uint64_t Fp = 0;
    if (Ample) {
      Fp = stateFp(S);
      if (!Stack.empty() && Stack.back().Por.Reduced && OnStack.count(Fp))
        upgradeToFull(Stack.back().Por, Stack.back().Choices, Result);
    }
    uint64_t Wake = 0;
    detail::InsertOutcome Ins =
        Ample ? Visited.insertMask(M, S, Sleep, Wake)
              : (Visited.insert(M, S) ? detail::InsertOutcome::Fresh
                                      : detail::InsertOutcome::Prune);
    if (Ins == detail::InsertOutcome::Prune) {
      ++Result.StatesDeduped;
      return true; // already explored; not a counterexample
    }
    bool IsWake = Ins == detail::InsertOutcome::Wake;
    if (IsWake) {
      ++Result.StatesDeduped; // partially-covered revisit
    } else {
      ++Result.StatesExplored;
      if (Result.StatesExplored >= Cfg.MaxStates || Visited.overBudget())
        Result.Exhausted = true;
    }

    std::vector<unsigned> Ready;
    std::vector<TraceStep> Blocked;
    if (!detail::classifyAll(M, S, Ready, Blocked, Path, Cex))
      return false;
    if (Ready.empty()) {
      if (!Blocked.empty()) {
        Cex.Steps = Path;
        Cex.V.VKind = Violation::Kind::Deadlock;
        Cex.V.Label = "deadlock: all live threads blocked";
        Cex.Where = Counterexample::Phase::Parallel;
        Cex.DeadlockSet = Blocked;
        return false;
      }
      // checkEpilogue snapshots S; the copy does not inherit the log.
      return detail::checkEpilogue(M, S, Path, Cex);
    }
    Frame F;
    F.Por.Fp = Fp;
    F.Choices = planChoices(M, S, Ample, std::move(Ready), Sleep, IsWake,
                            Wake, F.Por, Result);
    if (F.Choices.empty())
      return true; // every transition here is covered elsewhere (sleep)
    F.PathLen = Path.size();
    F.Mark = Log.mark();
    if (Ample)
      ++OnStack[F.Por.Fp];
    Stack.push_back(std::move(F));
    return true;
  };

  if (!Enter(0))
    return false;

  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.NextChoice >= Top.Choices.size() || Result.Exhausted) {
      S.revertTo(Top.Mark);
      if (Ample) {
        auto It = OnStack.find(Top.Por.Fp);
        if (--It->second == 0)
          OnStack.erase(It);
      }
      Stack.pop_back();
      if (!Stack.empty())
        Path.resize(Stack.back().PathLen);
      continue;
    }
    S.revertTo(Top.Mark); // undo the previous choice's subtree
    Path.resize(Top.PathLen);
    unsigned Ctx = Top.Choices[Top.NextChoice++];
    uint64_t ChildSleep = 0;
    if (Ample) {
      ChildSleep = detail::sleepAfter(M, S, Ctx, S.pc(Ctx),
                                      Top.Por.Sleep | Top.Por.Branched);
      Top.Por.Branched |= 1ull << Ctx;
    }
    Violation V;
    ExecOutcome Out = M.execStep(S, Ctx, V);
    if (Out.Result == StepResult::Violated) {
      Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
      Cex.Steps = Path;
      Cex.V = V;
      Cex.Where = Counterexample::Phase::Parallel;
      return false;
    }
    assert(Out.Result == StepResult::Ok && "chosen thread must step");
    Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
    if (!Enter(ChildSleep))
      return false;
  }
  return true;
}

// The batched frontier engine (CheckerConfig::BatchWidth >= 2;
// docs/BATCHING.md). Structurally a dfs() whose per-choice work is
// regrouped: up to BatchWidth pending choices of the top frame are
// generated into one FrontierBatch (SoA transpose -> batched orbit
// canonicalization -> batched fingerprint -> one batched visited probe),
// then descended into one by one in choice order. The OnStack cycle
// proviso and the sleep protocol are the scalar DFS's; the canonical
// fingerprints the batch computed serve both the on-stack keys and the
// table probe, where the scalar ample engine canonicalizes and hashes
// each child twice (stateFp + insertMask). Sub-batching — at most
// BatchWidth lanes per generation round — keeps a C2 upgrade's appended
// choices flowing through the same machinery and bounds per-frame
// memory; every generated lane is descended into before the next round,
// which is what keeps the Wake protocol's commitment (a Wake probe
// shrinks the stored mask, promising the woken transitions run).
bool Checker::dfsBatched(const State &Start, Counterexample &Cex) {
  struct BFrame {
    State S;
    std::vector<unsigned> Choices;
    size_t NextGen = 0; ///< next choice to generate
    size_t PathLen = 0;
    PorFrame Por;
    std::vector<uint8_t> Verdicts; ///< per-thread readiness cache
    detail::FrontierBatch Batch;
    unsigned NextLane = 0; ///< next generated lane to descend into
  };

  const bool Ample =
      Cfg.Por == PorMode::Ample && M.numThreads() <= detail::MaxSleepThreads;
  const unsigned Width = std::max(2u, Cfg.BatchWidth);
  const Canonicalizer *Cn = Canon && Canon->active() ? Canon.get() : nullptr;

  // Frames are pooled: Depth is the live stack height, frames above it
  // keep their buffers (state, choice list, batch lanes) for reuse. A
  // deque keeps frame references stable while a child is acquired
  // mid-descent.
  std::deque<BFrame> Stack;
  size_t Depth = 0;
  std::vector<TraceStep> Path;
  std::unordered_map<uint64_t, unsigned> OnStack; ///< fp -> frames (Ample)

  std::vector<unsigned> Ready;
  std::vector<TraceStep> Blocked;
  std::vector<uint8_t> Verdicts;
  std::vector<unsigned> GenCtx;
  std::vector<uint64_t> GenSleep;

  // Descends into live lane K of B (Path already carries its suffix):
  // memoized classification, terminal handling, choice planning, frame
  // push — the post-insert half of the scalar PushState.
  auto EnterLane = [&](detail::FrontierBatch &B, unsigned K,
                       const uint8_t *ParentV) -> bool {
    if (!B.classify(K, M, ParentV, Ready, Blocked, Verdicts, Path, Cex))
      return false;
    if (Ready.empty()) {
      if (!Blocked.empty()) {
        Cex.Steps = Path;
        Cex.V.VKind = Violation::Kind::Deadlock;
        Cex.V.Label = "deadlock: all live threads blocked";
        Cex.Where = Counterexample::Phase::Parallel;
        Cex.DeadlockSet = Blocked;
        return false;
      }
      return detail::checkEpilogue(M, B.state(K), Path, Cex);
    }
    if (Depth == Stack.size())
      Stack.emplace_back();
    BFrame &F = Stack[Depth];
    F.Por = PorFrame();
    F.Por.Fp = B.fp(K);
    bool IsWake = B.ins(K) == detail::InsertOutcome::Wake;
    F.Choices = planChoices(M, B.state(K), Ample, std::move(Ready),
                            B.sleep(K), IsWake, B.wake(K), F.Por, Result);
    if (F.Choices.empty())
      return true; // every transition here is covered elsewhere (sleep)
    std::swap(F.S, B.state(K)); // recycle the frame's old state buffer
    F.Verdicts = Verdicts;
    F.PathLen = Path.size();
    F.NextGen = 0;
    F.NextLane = 0;
    F.Batch.clear();
    if (Ample)
      ++OnStack[F.Por.Fp];
    ++Depth;
    return true;
  };

  detail::FrontierBatch Root;
  if (!Root.generateRoot(M, Cfg.Por, Start, Path, Cex))
    return false;
  Root.fingerprint(M, Cn, Visited.hashFn());
  Root.probeMask(M, Visited); // the table is empty: always Fresh
  ++Result.StatesExplored;
  if (Result.StatesExplored >= Cfg.MaxStates || Visited.overBudget())
    Result.Exhausted = true;
  Path.insert(Path.end(), Root.suffix(0).begin(), Root.suffix(0).end());
  if (!EnterLane(Root, 0, nullptr))
    return false;

  while (Depth > 0) {
    BFrame &Top = Stack[Depth - 1];
    if (Top.NextLane >= Top.Batch.size()) {
      if (Top.NextGen >= Top.Choices.size() || Result.Exhausted) {
        if (Ample) {
          auto It = OnStack.find(Top.Por.Fp);
          if (--It->second == 0)
            OnStack.erase(It);
        }
        --Depth;
        if (Depth > 0)
          Path.resize(Stack[Depth - 1].PathLen);
        continue;
      }
      // Generate the next sub-batch of pending choices.
      Path.resize(Top.PathLen);
      unsigned NGen = static_cast<unsigned>(
          std::min<size_t>(Width, Top.Choices.size() - Top.NextGen));
      GenCtx.clear();
      GenSleep.clear();
      for (unsigned I = 0; I < NGen; ++I) {
        unsigned Ctx = Top.Choices[Top.NextGen + I];
        uint64_t CS = 0;
        if (Ample) {
          CS = detail::sleepAfter(M, Top.S, Ctx, Top.S.pc(Ctx),
                                  Top.Por.Sleep | Top.Por.Branched);
          Top.Por.Branched |= 1ull << Ctx;
        }
        GenCtx.push_back(Ctx);
        GenSleep.push_back(CS);
      }
      Top.NextGen += NGen;
      if (!Top.Batch.generate(M, Cfg.Por, Top.S, GenCtx.data(),
                              GenSleep.data(), NGen, Path, Cex))
        return false;
      Top.Batch.fingerprint(M, Cn, Visited.hashFn());
      // The C2 upgrade check runs against the on-stack set before the
      // probe, like the scalar PushState (which checks before each
      // child's insert; inserts never touch OnStack and the intervening
      // subtrees net out of it, so checking the whole sub-batch first is
      // equivalent).
      if (Ample && Top.Por.Reduced)
        for (unsigned K = 0; K < NGen && Top.Por.Reduced; ++K)
          if (OnStack.count(Top.Batch.fp(K)))
            upgradeToFull(Top.Por, Top.Choices, Result);
      Top.Batch.probeMask(M, Visited);
      for (unsigned K = 0; K < NGen; ++K) {
        if (Top.Batch.ins(K) == detail::InsertOutcome::Fresh) {
          ++Result.StatesExplored;
          if (Result.StatesExplored >= Cfg.MaxStates || Visited.overBudget())
            Result.Exhausted = true;
        } else {
          ++Result.StatesDeduped; // Prune, or partially-covered Wake
        }
      }
      Top.NextLane = 0;
      continue;
    }
    if (Result.Exhausted) {
      // Abandon the remaining lanes (their inserts were already counted),
      // like the scalar engines abandon remaining choices.
      Top.NextLane = static_cast<unsigned>(Top.Batch.size());
      continue;
    }
    unsigned K = Top.NextLane++;
    if (Top.Batch.ins(K) == detail::InsertOutcome::Prune)
      continue; // a prior visit covers this lane
    Path.resize(Top.PathLen);
    Path.insert(Path.end(), Top.Batch.suffix(K).begin(),
                Top.Batch.suffix(K).end());
    if (!EnterLane(Top.Batch, K, Top.Verdicts.data()))
      return false;
  }
  return true;
}

CheckResult Checker::run() {
  runSearch();
  if (Canon) {
    Result.SymmetryOrbits = Canon->numOrbits();
    Result.CanonHits = Canon->canonHits();
    Result.CanonTime = Canon->buildSeconds();
  }
  return Result;
}

CheckResult Checker::runSearch() {
  // Phase 1: the deterministic prologue.
  State S0 = M.initialState();
  {
    Violation V;
    if (!M.runToCompletion(S0, M.prologueCtx(), V)) {
      Counterexample Cex;
      Cex.Where = Counterexample::Phase::Prologue;
      Cex.V = V;
      Result.Ok = false;
      Result.Cex = std::move(Cex);
      return Result;
    }
  }

  // Phase 2: cheap random falsification (one stream: the legacy
  // single-threaded behaviour the reproducibility contract pins).
  if (UseFalsifier) {
    Rng R(Cfg.Seed);
    for (unsigned I = 0; I < Cfg.RandomRuns; ++I) {
      ++Result.RandomRunsUsed;
      Counterexample Cex;
      if (!detail::randomRun(M, Cfg.Por, S0, R, Cex)) {
        Result.Ok = false;
        Result.Cex = std::move(Cex);
        return Result;
      }
    }
  }

  // Phase 3: exhaustive search.
  Counterexample Cex;
  bool Clean = Cfg.Order == SearchOrder::Bfs ? bfs(S0, Cex)
               : Cfg.BatchWidth >= 2         ? dfsBatched(S0, Cex)
               : Cfg.UseUndoLog              ? dfsUndo(S0, Cex)
                                             : dfs(S0, Cex);
  Result.FingerprintCollisions = Visited.collisions();
  Result.VisitedBytes = Visited.keyBytes();
  Result.BudgetAborted = Visited.overBudget();
  if (Spill) {
    // The filters are RAM the spill tier owns — count them with the
    // in-memory tier so VisitedBytes + SpillBytes is the true
    // end-to-end footprint (docs/SPILL.md).
    Result.VisitedBytes += Spill->filterBytes();
    Result.SpilledStates = Spill->spilledStates();
    Result.SpillBytes = Spill->spillBytes();
    Result.RunMerges = Spill->runMerges();
    Result.FilterFalseHits = Spill->filterFalseHits();
    Result.SpillFallback = !Spill->ok();
  }
  if (!Clean) {
    Result.Ok = false;
    Result.Cex = std::move(Cex);
    // An ample-mode trace is an artifact of the reduced graph, and an
    // active symmetry can likewise change which violation the search
    // reaches first (orbit merging prunes subtrees); re-derive the
    // canonical trace with both reductions relaxed so every mode reports
    // the same counterexample (reproducibility contract; docs/POR.md and
    // docs/SYMMETRY.md). The falsifier phase needs no re-run: single
    // schedules are identical under Local and Ample, and it ran before
    // this search anyway.
    // Batching likewise re-shapes the search tree (eager sibling
    // insertion), so a batched trace is re-derived scalar as well.
    bool SymActive = Canon && Canon->active();
    if ((Cfg.Por == PorMode::Ample || SymActive || Cfg.BatchWidth >= 2) &&
        Cfg.DeterministicCex) {
      CheckerConfig ReCfg = Cfg;
      if (ReCfg.Por == PorMode::Ample)
        ReCfg.Por = PorMode::Local;
      ReCfg.Symmetry = SymmetryMode::Off;
      ReCfg.BatchWidth = 1;
      CheckResult Seq = detail::checkCandidateSequential(M, ReCfg, false);
      Result.StatesExplored += Seq.StatesExplored;
      Result.StatesDeduped += Seq.StatesDeduped;
      Result.FingerprintCollisions += Seq.FingerprintCollisions;
      Result.VisitedBytes += Seq.VisitedBytes;
      Result.SpilledStates += Seq.SpilledStates;
      Result.SpillBytes += Seq.SpillBytes;
      Result.RunMerges += Seq.RunMerges;
      Result.FilterFalseHits += Seq.FilterFalseHits;
      Result.BudgetAborted = Result.BudgetAborted || Seq.BudgetAborted;
      Result.SpillFallback = Result.SpillFallback || Seq.SpillFallback;
      if (!Seq.Ok && Seq.Cex)
        Result.Cex = std::move(Seq.Cex);
      else
        // The Local search hit its budget before reaching any violation:
        // keep the ample trace (still a real execution) and surface the
        // budget caveat.
        Result.Exhausted = Result.Exhausted || Seq.Exhausted;
    }
    return Result;
  }
  Result.Ok = true;
  return Result;
}

} // namespace

CheckResult psketch::verify::detail::checkCandidateSequential(
    const Machine &M, const CheckerConfig &Cfg, bool UseFalsifier) {
  Checker C(M, Cfg, UseFalsifier);
  return C.run();
}

CheckResult psketch::verify::checkCandidate(const Machine &M,
                                            const CheckerConfig &Cfg) {
  unsigned Workers = resolvedNumThreads(Cfg);
  CheckResult Res =
      Workers <= 1
          ? detail::checkCandidateSequential(M, Cfg, Cfg.UseRandomFalsifier)
          : detail::checkCandidateParallel(M, Cfg, Workers);
  // Analysis-tuning observability lives on the Machine; stamp it here so
  // every engine (sequential, parallel, re-derivation) reports it.
  Res.TightenedBits = M.tightenedBits();
  Res.LockIndepPairs = M.lockIndepPairs();
  Res.PackEscapes = M.packEscapes();
  Res.ShapeSites = M.shapeSites();
  Res.SiteIndepPairs = M.siteIndepPairs();
  return Res;
}
