//===- verify/ModelChecker.cpp ---------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "verify/ModelChecker.h"

#include "support/Rng.h"
#include "support/StrUtil.h"
#include "verify/Canon.h"
#include "verify/SearchCore.h"
#include "verify/Visited.h"

#include <cassert>
#include <memory>
#include <thread>
#include <unordered_map>

using namespace psketch;
using namespace psketch::verify;
using exec::ExecOutcome;
using exec::Machine;
using exec::State;
using exec::StepResult;
using exec::Violation;

std::string Counterexample::describe(const Machine &M) const {
  std::string Out = format("violation: %s (phase %d)\n", V.Label.c_str(),
                           static_cast<int>(Where));
  for (const TraceStep &S : Steps) {
    const flat::Step &St = M.bodyOf(S.Thread).Steps[S.Pc];
    Out += format("  T%u#%u: %s\n", S.Thread, S.Pc, St.Label.c_str());
  }
  for (const TraceStep &S : DeadlockSet)
    Out += format("  blocked T%u#%u\n", S.Thread, S.Pc);
  return Out;
}

unsigned psketch::verify::resolvedNumThreads(const CheckerConfig &Cfg) {
  if (Cfg.NumThreads != 0)
    return Cfg.NumThreads;
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

namespace {

class Checker {
public:
  Checker(const Machine &M, const CheckerConfig &Cfg, bool UseFalsifier)
      : M(M), Cfg(Cfg), UseFalsifier(UseFalsifier), Canon(makeCanon(M, Cfg)),
        Visited(Cfg, &hashWords,
                Canon && Canon->active() ? Canon.get() : nullptr) {}

  CheckResult run();

private:
  /// The three search phases; run() wraps it to stamp the symmetry
  /// counters onto whichever Result it produced.
  CheckResult runSearch();

  /// Symmetry setup: under SymmetryMode::Orbit the canonicalizer is
  /// built per candidate (inference + table compilation, the cost
  /// surfaced as CanonTime); it is attached to the visited table only
  /// when a non-trivial orbit was proven.
  static std::unique_ptr<Canonicalizer> makeCanon(const Machine &M,
                                                  const CheckerConfig &Cfg) {
    if (Cfg.Symmetry != SymmetryMode::Orbit)
      return nullptr;
    return std::make_unique<Canonicalizer>(M);
  }

  /// Canonical state fingerprint for the DFS OnStack set. Under an
  /// active symmetry the cycle proviso must run in quotient-graph
  /// coordinates: a reduced expansion whose successor is a symmetric
  /// image of a stack state closes a quotient cycle even though the raw
  /// states differ, so the OnStack key has to be the canonical
  /// fingerprint the visited table deduped on (docs/SYMMETRY.md).
  uint64_t stateFp(const State &S) const {
    if (Canon && Canon->active()) {
      unsigned PermIdx = Canonicalizer::IdentityPerm;
      return M.fingerprintWords(Canon->canonicalize(S.words(), PermIdx));
    }
    return M.fingerprintState(S);
  }

  const Machine &M;
  const CheckerConfig &Cfg;
  bool UseFalsifier;
  CheckResult Result;
  std::unique_ptr<Canonicalizer> Canon; ///< before Visited: it aliases this
  detail::VisitedTable Visited;

  /// Exhaustive DFS, legacy copy-per-successor loop (UseUndoLog=false).
  /// \returns true if no violation is reachable (within the budget).
  bool dfs(const State &Start, Counterexample &Cex);

  /// Exhaustive DFS over ONE state mutated in place: each scheduling
  /// choice is applied with an attached undo log and reverted on
  /// backtrack, so a step costs O(changed words) instead of a full state
  /// copy. Operation order (local chain, dedup, classify, frame push) is
  /// identical to dfs(), so verdict, counterexample, and state counts
  /// match it exactly — tested by test_state_engine.cpp.
  bool dfsUndo(const State &Start, Counterexample &Cex);

  /// Exhaustive BFS with state dedup: finds shortest counterexamples.
  /// Keeps per-node copies (parent links need live states).
  bool bfs(const State &Start, Counterexample &Cex);
};

bool Checker::bfs(const State &Start, Counterexample &Cex) {
  // Search nodes keep parent links so counterexample paths can be
  // reconstructed without storing a path per node.
  struct Node {
    State S;
    int Parent = -1;
    std::vector<TraceStep> Steps; ///< steps taken from the parent
  };
  std::vector<Node> Nodes;

  const bool Ample = Cfg.Por == PorMode::Ample;

  auto ReconstructTo = [&](int Index, std::vector<TraceStep> &Out) {
    std::vector<int> Chain;
    for (int I = Index; I >= 0; I = Nodes[I].Parent)
      Chain.push_back(I);
    Out.clear();
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It)
      Out.insert(Out.end(), Nodes[*It].Steps.begin(),
                 Nodes[*It].Steps.end());
  };

  // Enters a state: runs its local chain, dedups, appends a node.
  // Returns false if a counterexample was found.
  auto Enter = [&](State S, int Parent,
                   std::vector<TraceStep> Prefix) -> bool {
    std::vector<TraceStep> Chain = std::move(Prefix);
    Counterexample Local;
    std::vector<TraceStep> Scratch;
    if (!detail::advanceLocal(M, Cfg.Por, S, Scratch, Local)) {
      // Violation inside the local chain.
      ReconstructTo(Parent, Cex.Steps);
      Cex.Steps.insert(Cex.Steps.end(), Chain.begin(), Chain.end());
      Cex.Steps.insert(Cex.Steps.end(), Local.Steps.begin(),
                       Local.Steps.end());
      Cex.V = Local.V;
      Cex.Where = Local.Where;
      Cex.DeadlockSet = Local.DeadlockSet;
      return false;
    }
    Chain.insert(Chain.end(), Scratch.begin(), Scratch.end());
    if (!Visited.insert(M, S)) {
      ++Result.StatesDeduped;
      return true;
    }
    ++Result.StatesExplored;
    if (Result.StatesExplored >= Cfg.MaxStates)
      Result.Exhausted = true;
    Node N;
    N.S = std::move(S);
    N.Parent = Parent;
    N.Steps = std::move(Chain);
    Nodes.push_back(std::move(N));
    return true;
  };

  if (!Enter(Start, -1, {}))
    return false;

  for (size_t Head = 0; Head < Nodes.size() && !Result.Exhausted; ++Head) {
    // Copy out what we need: Enter() may reallocate Nodes.
    State S = Nodes[Head].S;
    std::vector<unsigned> Ready;
    std::vector<TraceStep> Blocked;
    std::vector<TraceStep> Path; // only needed on failure
    if (!detail::classifyAll(M, S, Ready, Blocked, Path, Cex)) {
      std::vector<TraceStep> Extra = std::move(Cex.Steps);
      ReconstructTo(static_cast<int>(Head), Cex.Steps);
      Cex.Steps.insert(Cex.Steps.end(), Extra.begin(), Extra.end());
      return false;
    }
    if (Ready.empty()) {
      if (!Blocked.empty()) {
        ReconstructTo(static_cast<int>(Head), Cex.Steps);
        Cex.V.VKind = Violation::Kind::Deadlock;
        Cex.V.Label = "deadlock: all live threads blocked";
        Cex.Where = Counterexample::Phase::Parallel;
        Cex.DeadlockSet = Blocked;
        return false;
      }
      ReconstructTo(static_cast<int>(Head), Path);
      if (!detail::checkEpilogue(M, S, Path, Cex))
        return false;
      continue;
    }
    // Ample reduction with the BFS cycle proviso (C2): expand the
    // singleton alone only when its locally-advanced successor has NOT
    // been visited — on any cycle of the reduced graph the last state
    // expanded finds its successor in the table and expands fully, so no
    // thread is deferred forever around the cycle (docs/POR.md).
    if (Ample && Ready.size() >= 2) {
      int AI = detail::selectAmple(M, S, Ready);
      if (AI >= 0) {
        unsigned Ctx = Ready[AI];
        State Next = S;
        Violation V;
        ExecOutcome Out = M.execStep(Next, Ctx, V);
        if (Out.Result == StepResult::Violated) {
          ReconstructTo(static_cast<int>(Head), Cex.Steps);
          Cex.Steps.push_back(TraceStep{Ctx, Out.ExecutedPc});
          Cex.V = V;
          Cex.Where = Counterexample::Phase::Parallel;
          return false;
        }
        assert(Out.Result == StepResult::Ok && "ready thread must step");
        std::vector<TraceStep> Prefix{TraceStep{Ctx, Out.ExecutedPc}};
        Counterexample Local;
        if (!detail::advanceLocal(M, Cfg.Por, Next, Prefix, Local)) {
          ReconstructTo(static_cast<int>(Head), Cex.Steps);
          Cex.Steps.insert(Cex.Steps.end(), Local.Steps.begin(),
                           Local.Steps.end());
          Cex.V = Local.V;
          Cex.Where = Local.Where;
          Cex.DeadlockSet = Local.DeadlockSet;
          return false;
        }
        if (!Visited.contains(M, Next)) {
          ++Result.AmpleStates;
          // Next is already in normal form, so Enter's own local chain
          // is a no-op and Prefix carries the full step sequence.
          if (!Enter(std::move(Next), static_cast<int>(Head),
                     std::move(Prefix)))
            return false;
          continue;
        }
        ++Result.FullExpansions; // proviso hit: fall through, expand all
      } else {
        ++Result.FullExpansions;
      }
    }
    for (unsigned Ctx : Ready) {
      State Next = S;
      Violation V;
      ExecOutcome Out = M.execStep(Next, Ctx, V);
      if (Out.Result == StepResult::Violated) {
        ReconstructTo(static_cast<int>(Head), Cex.Steps);
        Cex.Steps.push_back(TraceStep{Ctx, Out.ExecutedPc});
        Cex.V = V;
        Cex.Where = Counterexample::Phase::Parallel;
        return false;
      }
      assert(Out.Result == StepResult::Ok && "ready thread must step");
      if (!Enter(std::move(Next), static_cast<int>(Head),
                 {TraceStep{Ctx, Out.ExecutedPc}}))
        return false;
    }
  }
  return true;
}

// The DFS engines share their ample/sleep decision logic through this
// helper so dfs (copy) and dfsUndo (in-place) behave identically — the
// equivalence test of test_state_engine.cpp covers the reduced modes too.
namespace {

/// Per-frame POR bookkeeping common to both DFS engines.
struct PorFrame {
  uint64_t Sleep = 0;    ///< sleep mask the state was entered with
  uint64_t Branched = 0; ///< choices already expanded from this frame
  bool Reduced = false;  ///< singleton ample frame (C2 may upgrade it)
  std::vector<unsigned> Ready; ///< full ready set (kept for the upgrade)
  uint64_t Fp = 0;             ///< on-stack key for the cycle proviso
};

/// Decides what a freshly-entered state explores: a singleton ample set
/// when one qualifies, the full ready set otherwise, minus slept
/// contexts; or, for a Wake revisit, exactly the woken contexts. Fills
/// \p F (Sleep/Reduced/Ready) and returns the choice list; bumps the POR
/// counters on \p R.
std::vector<unsigned> planChoices(const Machine &M, State &S, bool Ample,
                                  std::vector<unsigned> Ready,
                                  uint64_t Sleep, bool IsWake, uint64_t Wake,
                                  PorFrame &F, CheckResult &R) {
  std::vector<unsigned> Choices;
  F.Sleep = Sleep;
  if (IsWake) {
    // Re-expansion of a partially-covered state: only the transitions a
    // prior visit slept through, as a plain (non-ample) frame.
    for (unsigned C : Ready)
      if (Wake & (1ull << C))
        Choices.push_back(C);
    F.Ready = std::move(Ready);
    return Choices;
  }
  int AmpleIdx = Ample ? detail::selectAmple(M, S, Ready) : -1;
  if (AmpleIdx >= 0) {
    F.Reduced = true;
    ++R.AmpleStates;
    Choices.push_back(Ready[AmpleIdx]);
  } else {
    Choices = Ready;
    if (Ample && Ready.size() >= 2)
      ++R.FullExpansions;
  }
  if (Sleep) {
    std::vector<unsigned> Kept;
    for (unsigned C : Choices) {
      if (Sleep & (1ull << C))
        ++R.SleepSkips;
      else
        Kept.push_back(C);
    }
    Choices = std::move(Kept);
  }
  F.Ready = std::move(Ready);
  return Choices;
}

/// The C2 cycle-proviso upgrade: the reduced frame's successor closed a
/// DFS-stack cycle, so the deferred contexts could be ignored forever
/// around it — append the rest of the (unslept) ready set after the
/// already-running singleton. (The thread-phase state graph is acyclic —
/// every Ok step advances some pc and normalization only increases them
/// — so this never fires in practice; it is kept because the reduction's
/// soundness must not depend on that structural accident.)
void upgradeToFull(PorFrame &F, std::vector<unsigned> &Choices,
                   CheckResult &R) {
  F.Reduced = false;
  --R.AmpleStates;
  ++R.FullExpansions;
  for (unsigned C : F.Ready) {
    if (C == Choices[0])
      continue;
    if (F.Sleep & (1ull << C))
      ++R.SleepSkips;
    else
      Choices.push_back(C);
  }
}

} // namespace

bool Checker::dfs(const State &Start, Counterexample &Cex) {
  struct Frame {
    State S;
    std::vector<unsigned> Choices;
    size_t NextChoice = 0;
    size_t PathLen = 0;
    PorFrame Por;
  };

  const bool Ample =
      Cfg.Por == PorMode::Ample && M.numThreads() <= detail::MaxSleepThreads;

  std::vector<Frame> Stack;
  std::vector<TraceStep> Path;
  std::unordered_map<uint64_t, unsigned> OnStack; ///< fp -> frames (Ample)

  // Pushes a state after running its local chain; handles terminal states.
  // Returns false if a counterexample was found.
  auto PushState = [&](State S, uint64_t Sleep) -> bool {
    if (!detail::advanceLocal(M, Cfg.Por, S, Path, Cex))
      return false;
    uint64_t Fp = 0;
    if (Ample) {
      Fp = stateFp(S);
      if (!Stack.empty() && Stack.back().Por.Reduced && OnStack.count(Fp))
        upgradeToFull(Stack.back().Por, Stack.back().Choices, Result);
    }
    uint64_t Wake = 0;
    detail::InsertOutcome Ins =
        Ample ? Visited.insertMask(M, S, Sleep, Wake)
              : (Visited.insert(M, S) ? detail::InsertOutcome::Fresh
                                      : detail::InsertOutcome::Prune);
    if (Ins == detail::InsertOutcome::Prune) {
      ++Result.StatesDeduped;
      return true; // already explored; not a counterexample
    }
    bool IsWake = Ins == detail::InsertOutcome::Wake;
    if (IsWake) {
      ++Result.StatesDeduped; // partially-covered revisit
    } else {
      ++Result.StatesExplored;
      if (Result.StatesExplored >= Cfg.MaxStates)
        Result.Exhausted = true;
    }

    std::vector<unsigned> Ready;
    std::vector<TraceStep> Blocked;
    if (!detail::classifyAll(M, S, Ready, Blocked, Path, Cex))
      return false;
    if (Ready.empty()) {
      if (!Blocked.empty()) {
        Cex.Steps = Path;
        Cex.V.VKind = Violation::Kind::Deadlock;
        Cex.V.Label = "deadlock: all live threads blocked";
        Cex.Where = Counterexample::Phase::Parallel;
        Cex.DeadlockSet = Blocked;
        return false;
      }
      return detail::checkEpilogue(M, S, Path, Cex); // leaf: phase done
    }
    Frame F;
    F.Por.Fp = Fp;
    F.Choices = planChoices(M, S, Ample, std::move(Ready), Sleep, IsWake,
                            Wake, F.Por, Result);
    if (F.Choices.empty())
      return true; // every transition here is covered elsewhere (sleep)
    F.S = std::move(S);
    F.PathLen = Path.size();
    if (Ample)
      ++OnStack[F.Por.Fp];
    Stack.push_back(std::move(F));
    return true;
  };

  if (!PushState(Start, 0))
    return false;

  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.NextChoice >= Top.Choices.size() || Result.Exhausted) {
      if (Ample) {
        auto It = OnStack.find(Top.Por.Fp);
        if (--It->second == 0)
          OnStack.erase(It);
      }
      Stack.pop_back();
      if (!Stack.empty())
        Path.resize(Stack.back().PathLen);
      continue;
    }
    Path.resize(Top.PathLen);
    unsigned Ctx = Top.Choices[Top.NextChoice++];
    uint64_t ChildSleep = 0;
    if (Ample) {
      ChildSleep = detail::sleepAfter(M, Top.S, Ctx, Top.S.pc(Ctx),
                                      Top.Por.Sleep | Top.Por.Branched);
      Top.Por.Branched |= 1ull << Ctx;
    }
    State Next = Top.S;
    Violation V;
    ExecOutcome Out = M.execStep(Next, Ctx, V);
    if (Out.Result == StepResult::Violated) {
      Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
      Cex.Steps = Path;
      Cex.V = V;
      Cex.Where = Counterexample::Phase::Parallel;
      return false;
    }
    assert(Out.Result == StepResult::Ok && "chosen thread must step");
    Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
    if (!PushState(std::move(Next), ChildSleep))
      return false;
  }
  return true;
}

bool Checker::dfsUndo(const State &Start, Counterexample &Cex) {
  // A frame carries no state: the single search state S is reverted to
  // the frame's log mark before each of its scheduling choices.
  struct Frame {
    std::vector<unsigned> Choices;
    size_t NextChoice = 0;
    size_t PathLen = 0;
    exec::UndoLog::Mark Mark = 0;
    PorFrame Por;
  };

  const bool Ample =
      Cfg.Por == PorMode::Ample && M.numThreads() <= detail::MaxSleepThreads;

  std::vector<Frame> Stack;
  std::vector<TraceStep> Path;
  std::unordered_map<uint64_t, unsigned> OnStack; ///< fp -> frames (Ample)
  exec::UndoLog Log;
  State S = Start;
  S.attachLog(&Log);

  // Enters S in place: local chain, dedup, classification, terminal
  // handling; pushes a frame when there are scheduling choices. The
  // frame's mark is taken AFTER the local chain and pc normalization, so
  // reverting to it lands exactly on the entered (deduped) state.
  // Returns false if a counterexample was found.
  auto Enter = [&](uint64_t Sleep) -> bool {
    if (!detail::advanceLocal(M, Cfg.Por, S, Path, Cex))
      return false;
    uint64_t Fp = 0;
    if (Ample) {
      Fp = stateFp(S);
      if (!Stack.empty() && Stack.back().Por.Reduced && OnStack.count(Fp))
        upgradeToFull(Stack.back().Por, Stack.back().Choices, Result);
    }
    uint64_t Wake = 0;
    detail::InsertOutcome Ins =
        Ample ? Visited.insertMask(M, S, Sleep, Wake)
              : (Visited.insert(M, S) ? detail::InsertOutcome::Fresh
                                      : detail::InsertOutcome::Prune);
    if (Ins == detail::InsertOutcome::Prune) {
      ++Result.StatesDeduped;
      return true; // already explored; not a counterexample
    }
    bool IsWake = Ins == detail::InsertOutcome::Wake;
    if (IsWake) {
      ++Result.StatesDeduped; // partially-covered revisit
    } else {
      ++Result.StatesExplored;
      if (Result.StatesExplored >= Cfg.MaxStates)
        Result.Exhausted = true;
    }

    std::vector<unsigned> Ready;
    std::vector<TraceStep> Blocked;
    if (!detail::classifyAll(M, S, Ready, Blocked, Path, Cex))
      return false;
    if (Ready.empty()) {
      if (!Blocked.empty()) {
        Cex.Steps = Path;
        Cex.V.VKind = Violation::Kind::Deadlock;
        Cex.V.Label = "deadlock: all live threads blocked";
        Cex.Where = Counterexample::Phase::Parallel;
        Cex.DeadlockSet = Blocked;
        return false;
      }
      // checkEpilogue snapshots S; the copy does not inherit the log.
      return detail::checkEpilogue(M, S, Path, Cex);
    }
    Frame F;
    F.Por.Fp = Fp;
    F.Choices = planChoices(M, S, Ample, std::move(Ready), Sleep, IsWake,
                            Wake, F.Por, Result);
    if (F.Choices.empty())
      return true; // every transition here is covered elsewhere (sleep)
    F.PathLen = Path.size();
    F.Mark = Log.mark();
    if (Ample)
      ++OnStack[F.Por.Fp];
    Stack.push_back(std::move(F));
    return true;
  };

  if (!Enter(0))
    return false;

  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.NextChoice >= Top.Choices.size() || Result.Exhausted) {
      S.revertTo(Top.Mark);
      if (Ample) {
        auto It = OnStack.find(Top.Por.Fp);
        if (--It->second == 0)
          OnStack.erase(It);
      }
      Stack.pop_back();
      if (!Stack.empty())
        Path.resize(Stack.back().PathLen);
      continue;
    }
    S.revertTo(Top.Mark); // undo the previous choice's subtree
    Path.resize(Top.PathLen);
    unsigned Ctx = Top.Choices[Top.NextChoice++];
    uint64_t ChildSleep = 0;
    if (Ample) {
      ChildSleep = detail::sleepAfter(M, S, Ctx, S.pc(Ctx),
                                      Top.Por.Sleep | Top.Por.Branched);
      Top.Por.Branched |= 1ull << Ctx;
    }
    Violation V;
    ExecOutcome Out = M.execStep(S, Ctx, V);
    if (Out.Result == StepResult::Violated) {
      Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
      Cex.Steps = Path;
      Cex.V = V;
      Cex.Where = Counterexample::Phase::Parallel;
      return false;
    }
    assert(Out.Result == StepResult::Ok && "chosen thread must step");
    Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
    if (!Enter(ChildSleep))
      return false;
  }
  return true;
}

CheckResult Checker::run() {
  runSearch();
  if (Canon) {
    Result.SymmetryOrbits = Canon->numOrbits();
    Result.CanonHits = Canon->canonHits();
    Result.CanonTime = Canon->buildSeconds();
  }
  return Result;
}

CheckResult Checker::runSearch() {
  // Phase 1: the deterministic prologue.
  State S0 = M.initialState();
  {
    Violation V;
    if (!M.runToCompletion(S0, M.prologueCtx(), V)) {
      Counterexample Cex;
      Cex.Where = Counterexample::Phase::Prologue;
      Cex.V = V;
      Result.Ok = false;
      Result.Cex = std::move(Cex);
      return Result;
    }
  }

  // Phase 2: cheap random falsification (one stream: the legacy
  // single-threaded behaviour the reproducibility contract pins).
  if (UseFalsifier) {
    Rng R(Cfg.Seed);
    for (unsigned I = 0; I < Cfg.RandomRuns; ++I) {
      ++Result.RandomRunsUsed;
      Counterexample Cex;
      if (!detail::randomRun(M, Cfg.Por, S0, R, Cex)) {
        Result.Ok = false;
        Result.Cex = std::move(Cex);
        return Result;
      }
    }
  }

  // Phase 3: exhaustive search.
  Counterexample Cex;
  bool Clean = Cfg.Order == SearchOrder::Bfs ? bfs(S0, Cex)
               : Cfg.UseUndoLog              ? dfsUndo(S0, Cex)
                                             : dfs(S0, Cex);
  Result.FingerprintCollisions = Visited.collisions();
  Result.VisitedBytes = Visited.keyBytes();
  if (!Clean) {
    Result.Ok = false;
    Result.Cex = std::move(Cex);
    // An ample-mode trace is an artifact of the reduced graph, and an
    // active symmetry can likewise change which violation the search
    // reaches first (orbit merging prunes subtrees); re-derive the
    // canonical trace with both reductions relaxed so every mode reports
    // the same counterexample (reproducibility contract; docs/POR.md and
    // docs/SYMMETRY.md). The falsifier phase needs no re-run: single
    // schedules are identical under Local and Ample, and it ran before
    // this search anyway.
    bool SymActive = Canon && Canon->active();
    if ((Cfg.Por == PorMode::Ample || SymActive) && Cfg.DeterministicCex) {
      CheckerConfig ReCfg = Cfg;
      if (ReCfg.Por == PorMode::Ample)
        ReCfg.Por = PorMode::Local;
      ReCfg.Symmetry = SymmetryMode::Off;
      CheckResult Seq = detail::checkCandidateSequential(M, ReCfg, false);
      Result.StatesExplored += Seq.StatesExplored;
      Result.StatesDeduped += Seq.StatesDeduped;
      Result.FingerprintCollisions += Seq.FingerprintCollisions;
      Result.VisitedBytes += Seq.VisitedBytes;
      if (!Seq.Ok && Seq.Cex)
        Result.Cex = std::move(Seq.Cex);
      else
        // The Local search hit its budget before reaching any violation:
        // keep the ample trace (still a real execution) and surface the
        // budget caveat.
        Result.Exhausted = Result.Exhausted || Seq.Exhausted;
    }
    return Result;
  }
  Result.Ok = true;
  return Result;
}

} // namespace

CheckResult psketch::verify::detail::checkCandidateSequential(
    const Machine &M, const CheckerConfig &Cfg, bool UseFalsifier) {
  Checker C(M, Cfg, UseFalsifier);
  return C.run();
}

CheckResult psketch::verify::checkCandidate(const Machine &M,
                                            const CheckerConfig &Cfg) {
  unsigned Workers = resolvedNumThreads(Cfg);
  CheckResult Res =
      Workers <= 1
          ? detail::checkCandidateSequential(M, Cfg, Cfg.UseRandomFalsifier)
          : detail::checkCandidateParallel(M, Cfg, Workers);
  // Analysis-tuning observability lives on the Machine; stamp it here so
  // every engine (sequential, parallel, re-derivation) reports it.
  Res.TightenedBits = M.tightenedBits();
  Res.LockIndepPairs = M.lockIndepPairs();
  Res.PackEscapes = M.packEscapes();
  return Res;
}
