//===- verify/ModelChecker.cpp ---------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "verify/ModelChecker.h"

#include "support/Rng.h"
#include "support/StrUtil.h"
#include "verify/SearchCore.h"
#include "verify/Visited.h"

#include <cassert>
#include <thread>

using namespace psketch;
using namespace psketch::verify;
using exec::ExecOutcome;
using exec::Machine;
using exec::State;
using exec::StepResult;
using exec::Violation;

std::string Counterexample::describe(const Machine &M) const {
  std::string Out = format("violation: %s (phase %d)\n", V.Label.c_str(),
                           static_cast<int>(Where));
  for (const TraceStep &S : Steps) {
    const flat::Step &St = M.bodyOf(S.Thread).Steps[S.Pc];
    Out += format("  T%u#%u: %s\n", S.Thread, S.Pc, St.Label.c_str());
  }
  for (const TraceStep &S : DeadlockSet)
    Out += format("  blocked T%u#%u\n", S.Thread, S.Pc);
  return Out;
}

unsigned psketch::verify::resolvedNumThreads(const CheckerConfig &Cfg) {
  if (Cfg.NumThreads != 0)
    return Cfg.NumThreads;
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

namespace {

class Checker {
public:
  Checker(const Machine &M, const CheckerConfig &Cfg, bool UseFalsifier)
      : M(M), Cfg(Cfg), UseFalsifier(UseFalsifier), Visited(Cfg) {}

  CheckResult run();

private:
  const Machine &M;
  const CheckerConfig &Cfg;
  bool UseFalsifier;
  CheckResult Result;
  detail::VisitedTable Visited;

  /// Exhaustive DFS, legacy copy-per-successor loop (UseUndoLog=false).
  /// \returns true if no violation is reachable (within the budget).
  bool dfs(const State &Start, Counterexample &Cex);

  /// Exhaustive DFS over ONE state mutated in place: each scheduling
  /// choice is applied with an attached undo log and reverted on
  /// backtrack, so a step costs O(changed words) instead of a full state
  /// copy. Operation order (local chain, dedup, classify, frame push) is
  /// identical to dfs(), so verdict, counterexample, and state counts
  /// match it exactly — tested by test_state_engine.cpp.
  bool dfsUndo(const State &Start, Counterexample &Cex);

  /// Exhaustive BFS with state dedup: finds shortest counterexamples.
  /// Keeps per-node copies (parent links need live states).
  bool bfs(const State &Start, Counterexample &Cex);
};

bool Checker::bfs(const State &Start, Counterexample &Cex) {
  // Search nodes keep parent links so counterexample paths can be
  // reconstructed without storing a path per node.
  struct Node {
    State S;
    int Parent = -1;
    std::vector<TraceStep> Steps; ///< steps taken from the parent
  };
  std::vector<Node> Nodes;

  auto ReconstructTo = [&](int Index, std::vector<TraceStep> &Out) {
    std::vector<int> Chain;
    for (int I = Index; I >= 0; I = Nodes[I].Parent)
      Chain.push_back(I);
    Out.clear();
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It)
      Out.insert(Out.end(), Nodes[*It].Steps.begin(),
                 Nodes[*It].Steps.end());
  };

  // Enters a state: runs its local chain, dedups, appends a node.
  // Returns false if a counterexample was found.
  auto Enter = [&](State S, int Parent,
                   std::vector<TraceStep> Prefix) -> bool {
    std::vector<TraceStep> Chain = std::move(Prefix);
    Counterexample Local;
    std::vector<TraceStep> Scratch;
    if (!detail::advanceLocal(M, Cfg.UsePOR, S, Scratch, Local)) {
      // Violation inside the local chain.
      ReconstructTo(Parent, Cex.Steps);
      Cex.Steps.insert(Cex.Steps.end(), Chain.begin(), Chain.end());
      Cex.Steps.insert(Cex.Steps.end(), Local.Steps.begin(),
                       Local.Steps.end());
      Cex.V = Local.V;
      Cex.Where = Local.Where;
      Cex.DeadlockSet = Local.DeadlockSet;
      return false;
    }
    Chain.insert(Chain.end(), Scratch.begin(), Scratch.end());
    if (!Visited.insert(M, S)) {
      ++Result.StatesDeduped;
      return true;
    }
    ++Result.StatesExplored;
    if (Result.StatesExplored >= Cfg.MaxStates)
      Result.Exhausted = true;
    Node N;
    N.S = std::move(S);
    N.Parent = Parent;
    N.Steps = std::move(Chain);
    Nodes.push_back(std::move(N));
    return true;
  };

  if (!Enter(Start, -1, {}))
    return false;

  for (size_t Head = 0; Head < Nodes.size() && !Result.Exhausted; ++Head) {
    // Copy out what we need: Enter() may reallocate Nodes.
    State S = Nodes[Head].S;
    std::vector<unsigned> Ready;
    std::vector<TraceStep> Blocked;
    std::vector<TraceStep> Path; // only needed on failure
    if (!detail::classifyAll(M, S, Ready, Blocked, Path, Cex)) {
      std::vector<TraceStep> Extra = std::move(Cex.Steps);
      ReconstructTo(static_cast<int>(Head), Cex.Steps);
      Cex.Steps.insert(Cex.Steps.end(), Extra.begin(), Extra.end());
      return false;
    }
    if (Ready.empty()) {
      if (!Blocked.empty()) {
        ReconstructTo(static_cast<int>(Head), Cex.Steps);
        Cex.V.VKind = Violation::Kind::Deadlock;
        Cex.V.Label = "deadlock: all live threads blocked";
        Cex.Where = Counterexample::Phase::Parallel;
        Cex.DeadlockSet = Blocked;
        return false;
      }
      ReconstructTo(static_cast<int>(Head), Path);
      if (!detail::checkEpilogue(M, S, Path, Cex))
        return false;
      continue;
    }
    for (unsigned Ctx : Ready) {
      State Next = S;
      Violation V;
      ExecOutcome Out = M.execStep(Next, Ctx, V);
      if (Out.Result == StepResult::Violated) {
        ReconstructTo(static_cast<int>(Head), Cex.Steps);
        Cex.Steps.push_back(TraceStep{Ctx, Out.ExecutedPc});
        Cex.V = V;
        Cex.Where = Counterexample::Phase::Parallel;
        return false;
      }
      assert(Out.Result == StepResult::Ok && "ready thread must step");
      if (!Enter(std::move(Next), static_cast<int>(Head),
                 {TraceStep{Ctx, Out.ExecutedPc}}))
        return false;
    }
  }
  return true;
}

bool Checker::dfs(const State &Start, Counterexample &Cex) {
  struct Frame {
    State S;
    std::vector<unsigned> Choices;
    size_t NextChoice = 0;
    size_t PathLen = 0;
  };

  std::vector<Frame> Stack;
  std::vector<TraceStep> Path;

  // Pushes a state after running its local chain; handles terminal states.
  // Returns false if a counterexample was found.
  auto PushState = [&](State S) -> bool {
    if (!detail::advanceLocal(M, Cfg.UsePOR, S, Path, Cex))
      return false;
    if (!Visited.insert(M, S)) {
      ++Result.StatesDeduped;
      return true; // already explored; not a counterexample
    }
    ++Result.StatesExplored;
    if (Result.StatesExplored >= Cfg.MaxStates)
      Result.Exhausted = true;

    std::vector<unsigned> Ready;
    std::vector<TraceStep> Blocked;
    if (!detail::classifyAll(M, S, Ready, Blocked, Path, Cex))
      return false;
    if (Ready.empty()) {
      if (!Blocked.empty()) {
        Cex.Steps = Path;
        Cex.V.VKind = Violation::Kind::Deadlock;
        Cex.V.Label = "deadlock: all live threads blocked";
        Cex.Where = Counterexample::Phase::Parallel;
        Cex.DeadlockSet = Blocked;
        return false;
      }
      return detail::checkEpilogue(M, S, Path, Cex); // leaf: phase done
    }
    Frame F;
    F.S = std::move(S);
    F.Choices = std::move(Ready);
    F.PathLen = Path.size();
    Stack.push_back(std::move(F));
    return true;
  };

  if (!PushState(Start))
    return false;

  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.NextChoice >= Top.Choices.size() || Result.Exhausted) {
      Stack.pop_back();
      if (!Stack.empty())
        Path.resize(Stack.back().PathLen);
      continue;
    }
    Path.resize(Top.PathLen);
    unsigned Ctx = Top.Choices[Top.NextChoice++];
    State Next = Top.S;
    Violation V;
    ExecOutcome Out = M.execStep(Next, Ctx, V);
    if (Out.Result == StepResult::Violated) {
      Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
      Cex.Steps = Path;
      Cex.V = V;
      Cex.Where = Counterexample::Phase::Parallel;
      return false;
    }
    assert(Out.Result == StepResult::Ok && "chosen thread must step");
    Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
    if (!PushState(std::move(Next)))
      return false;
  }
  return true;
}

bool Checker::dfsUndo(const State &Start, Counterexample &Cex) {
  // A frame carries no state: the single search state S is reverted to
  // the frame's log mark before each of its scheduling choices.
  struct Frame {
    std::vector<unsigned> Choices;
    size_t NextChoice = 0;
    size_t PathLen = 0;
    exec::UndoLog::Mark Mark = 0;
  };

  std::vector<Frame> Stack;
  std::vector<TraceStep> Path;
  exec::UndoLog Log;
  State S = Start;
  S.attachLog(&Log);

  // Enters S in place: local chain, dedup, classification, terminal
  // handling; pushes a frame when there are scheduling choices. The
  // frame's mark is taken AFTER the local chain and pc normalization, so
  // reverting to it lands exactly on the entered (deduped) state.
  // Returns false if a counterexample was found.
  auto Enter = [&]() -> bool {
    if (!detail::advanceLocal(M, Cfg.UsePOR, S, Path, Cex))
      return false;
    if (!Visited.insert(M, S)) {
      ++Result.StatesDeduped;
      return true; // already explored; not a counterexample
    }
    ++Result.StatesExplored;
    if (Result.StatesExplored >= Cfg.MaxStates)
      Result.Exhausted = true;

    std::vector<unsigned> Ready;
    std::vector<TraceStep> Blocked;
    if (!detail::classifyAll(M, S, Ready, Blocked, Path, Cex))
      return false;
    if (Ready.empty()) {
      if (!Blocked.empty()) {
        Cex.Steps = Path;
        Cex.V.VKind = Violation::Kind::Deadlock;
        Cex.V.Label = "deadlock: all live threads blocked";
        Cex.Where = Counterexample::Phase::Parallel;
        Cex.DeadlockSet = Blocked;
        return false;
      }
      // checkEpilogue snapshots S; the copy does not inherit the log.
      return detail::checkEpilogue(M, S, Path, Cex);
    }
    Frame F;
    F.Choices = std::move(Ready);
    F.PathLen = Path.size();
    F.Mark = Log.mark();
    Stack.push_back(std::move(F));
    return true;
  };

  if (!Enter())
    return false;

  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.NextChoice >= Top.Choices.size() || Result.Exhausted) {
      S.revertTo(Top.Mark);
      Stack.pop_back();
      if (!Stack.empty())
        Path.resize(Stack.back().PathLen);
      continue;
    }
    S.revertTo(Top.Mark); // undo the previous choice's subtree
    Path.resize(Top.PathLen);
    unsigned Ctx = Top.Choices[Top.NextChoice++];
    Violation V;
    ExecOutcome Out = M.execStep(S, Ctx, V);
    if (Out.Result == StepResult::Violated) {
      Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
      Cex.Steps = Path;
      Cex.V = V;
      Cex.Where = Counterexample::Phase::Parallel;
      return false;
    }
    assert(Out.Result == StepResult::Ok && "chosen thread must step");
    Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
    if (!Enter())
      return false;
  }
  return true;
}

CheckResult Checker::run() {
  // Phase 1: the deterministic prologue.
  State S0 = M.initialState();
  {
    Violation V;
    if (!M.runToCompletion(S0, M.prologueCtx(), V)) {
      Counterexample Cex;
      Cex.Where = Counterexample::Phase::Prologue;
      Cex.V = V;
      Result.Ok = false;
      Result.Cex = std::move(Cex);
      return Result;
    }
  }

  // Phase 2: cheap random falsification (one stream: the legacy
  // single-threaded behaviour the reproducibility contract pins).
  if (UseFalsifier) {
    Rng R(Cfg.Seed);
    for (unsigned I = 0; I < Cfg.RandomRuns; ++I) {
      ++Result.RandomRunsUsed;
      Counterexample Cex;
      if (!detail::randomRun(M, Cfg.UsePOR, S0, R, Cex)) {
        Result.Ok = false;
        Result.Cex = std::move(Cex);
        return Result;
      }
    }
  }

  // Phase 3: exhaustive search.
  Counterexample Cex;
  bool Clean = Cfg.Order == SearchOrder::Bfs ? bfs(S0, Cex)
               : Cfg.UseUndoLog              ? dfsUndo(S0, Cex)
                                             : dfs(S0, Cex);
  Result.FingerprintCollisions = Visited.collisions();
  Result.VisitedBytes = Visited.keyBytes();
  if (!Clean) {
    Result.Ok = false;
    Result.Cex = std::move(Cex);
    return Result;
  }
  Result.Ok = true;
  return Result;
}

} // namespace

CheckResult psketch::verify::detail::checkCandidateSequential(
    const Machine &M, const CheckerConfig &Cfg, bool UseFalsifier) {
  Checker C(M, Cfg, UseFalsifier);
  return C.run();
}

CheckResult psketch::verify::checkCandidate(const Machine &M,
                                            const CheckerConfig &Cfg) {
  unsigned Workers = resolvedNumThreads(Cfg);
  if (Workers <= 1)
    return detail::checkCandidateSequential(M, Cfg, Cfg.UseRandomFalsifier);
  return detail::checkCandidateParallel(M, Cfg, Workers);
}
