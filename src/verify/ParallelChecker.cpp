//===- verify/ParallelChecker.cpp - Work-stealing parallel search ----------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-threaded verification engine behind CheckerConfig::NumThreads
/// (docs/PARALLEL.md has the full design argument). Structure:
///
///  * Phase 2 (random falsification) runs the configured burst across all
///    workers. Run r always draws from an independent SplitMix64 stream
///    derived from (Seed, r), and the reported counterexample is the one
///    with the smallest failing run index, so the outcome is a pure
///    function of the config — which worker executed which run never
///    matters.
///
///  * Phase 3 (exhaustive search) first grows a frontier of disjoint
///    subtree roots sequentially, then hands them to per-worker deques.
///    Owners pop LIFO (depth-first, bounded memory); a drained worker
///    steals the shallowest unit (FIFO end) from a victim — the classic
///    work-stealing discipline, which hands thieves the largest subtrees.
///    Deduplication goes through a mutex-striped shard table keyed by the
///    state hash. The first violation cooperatively cancels all workers.
///
///  * A violation's trace is then re-derived by the deterministic
///    sequential engine (CheckerConfig::DeterministicCex, default on) so
///    the counterexample CEGIS learns from is canonical regardless of
///    worker timing; only the *verdict* comes from the parallel phase.
///
//===----------------------------------------------------------------------===//

#include "verify/Canon.h"
#include "verify/FrontierBatch.h"
#include "verify/ModelChecker.h"
#include "verify/SearchCore.h"
#include "verify/Visited.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

using namespace psketch;
using namespace psketch::verify;
using exec::ExecOutcome;
using exec::Machine;
using exec::State;
using exec::StepResult;
using exec::Violation;

namespace {

/// One search node: a state reached by Path that has not yet been
/// entered (local chain, dedup, classification).
struct Unit {
  State S;
  std::vector<TraceStep> Path;
  /// Batched generation (CheckerConfig::BatchWidth >= 2) runs the local
  /// chain, dedup probe, and explored-count at the *generating* worker;
  /// such units skip the whole preamble when processed.
  bool PreInserted = false;
};

/// A worker's deque of pending units. The owner pushes/pops at the back
/// (LIFO: depth-first); thieves take from the front (the shallowest,
/// largest-subtree unit).
struct alignas(64) WorkDeque {
  std::mutex Mu;
  std::deque<Unit> Q;

  void push(Unit U) {
    std::lock_guard<std::mutex> Lock(Mu);
    Q.push_back(std::move(U));
  }
  bool popBack(Unit &Out) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Q.empty())
      return false;
    Out = std::move(Q.back());
    Q.pop_back();
    return true;
  }
  bool stealFront(Unit &Out) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Q.empty())
      return false;
    Out = std::move(Q.front());
    Q.pop_front();
    return true;
  }
};

/// Everything the workers share.
struct SearchShared {
  const Machine &M;
  const CheckerConfig &Cfg;

  /// Symmetry canonicalizer (null when off or the inference refused);
  /// declared before Visited, which aliases it. Canonicalization happens
  /// outside the shard locks (verify/Visited.h), so workers share one.
  std::unique_ptr<Canonicalizer> Canon;
  /// Disk tier (VisitedStore::Spill only); declared before Visited,
  /// which aliases it. Needs no locking of its own: spill shard k is
  /// only ever touched by visited shard k, under that shard's mutex.
  std::unique_ptr<detail::SpillStore> Spill;
  detail::ShardedVisited Visited;
  std::atomic<uint64_t> StatesExplored{0};
  std::atomic<uint64_t> StatesDeduped{0};
  std::atomic<uint64_t> Pending{0}; ///< queued + in-flight units
  std::atomic<bool> Stop{false};
  std::atomic<bool> Exhausted{false};
  std::atomic<uint64_t> AmpleCount{0}; ///< CheckResult::AmpleStates
  std::atomic<uint64_t> FullCount{0};  ///< CheckResult::FullExpansions

  std::mutex CexMu;
  std::optional<Counterexample> BestCex; ///< canonical-min among found

  explicit SearchShared(const Machine &M, const CheckerConfig &Cfg)
      : M(M), Cfg(Cfg),
        Canon(Cfg.Symmetry == SymmetryMode::Orbit
                  ? std::make_unique<Canonicalizer>(M)
                  : nullptr),
        Spill(Cfg.Store == VisitedStore::Spill
                  ? std::make_unique<detail::SpillStore>(Cfg.SpillDir)
                  : nullptr),
        Visited(Cfg, &hashWords,
                Canon && Canon->active() ? Canon.get() : nullptr,
                // A failed store is still handed over: the cells see
                // !ok() and waive the budget (SpillFallback), instead of
                // treating the budget as a Memory-mode abort watermark.
                Spill.get()) {}

  /// Records a violation (keeping the canonical-minimal trace) and
  /// cancels the search.
  void report(Counterexample Cex) {
    std::lock_guard<std::mutex> Lock(CexMu);
    if (!BestCex || detail::cexLess(Cex, *BestCex))
      BestCex = std::move(Cex);
    Stop.store(true);
  }

  /// Enters and expands one unit: POR chain, dedup, classification,
  /// terminal checks, then one child unit per ready thread handed to
  /// \p Push. \p WorkerStates is the caller's private explored counter.
  void processUnit(Unit U, uint64_t &WorkerStates,
                   const std::function<void(Unit)> &Push) {
    Counterexample Cex;
    if (!U.PreInserted) {
      if (!detail::advanceLocal(M, Cfg.Por, U.S, U.Path, Cex)) {
        report(std::move(Cex));
        return;
      }
      if (!Visited.insert(M, U.S)) {
        StatesDeduped.fetch_add(1);
        return;
      }
      ++WorkerStates;
      if (StatesExplored.fetch_add(1) + 1 >= Cfg.MaxStates ||
          Visited.overBudget()) {
        Exhausted.store(true);
        Stop.store(true);
        return;
      }
    }
    std::vector<unsigned> Ready;
    std::vector<TraceStep> Blocked;
    if (!detail::classifyAll(M, U.S, Ready, Blocked, U.Path, Cex)) {
      report(std::move(Cex));
      return;
    }
    if (Ready.empty()) {
      if (!Blocked.empty()) {
        Cex.Steps = U.Path;
        Cex.V.VKind = Violation::Kind::Deadlock;
        Cex.V.Label = "deadlock: all live threads blocked";
        Cex.Where = Counterexample::Phase::Parallel;
        Cex.DeadlockSet = Blocked;
        report(std::move(Cex));
        return;
      }
      if (!detail::checkEpilogue(M, U.S, U.Path, Cex))
        report(std::move(Cex));
      return;
    }
    if (Cfg.BatchWidth >= 2) {
      expandBatched(std::move(U), Ready, WorkerStates, Push);
      return;
    }
    // Ample reduction: expand a singleton-independent context alone,
    // unless the resulting child is already in the visited table — the
    // frontier-membership cycle proviso (C2). Insertion happens-before
    // expansion (shard mutex), so on any cycle closed entirely through
    // reduced states the last state to probe sees its successor inserted
    // and expands in full (docs/POR.md). A fingerprint-collision false
    // "yes" only forces the same sound full expansion.
    if (Cfg.Por == PorMode::Ample && Ready.size() >= 2) {
      int AI = detail::selectAmple(M, U.S, Ready);
      if (AI >= 0) {
        unsigned Ctx = Ready[AI];
        Unit Child;
        Child.S = U.S;
        Violation V;
        ExecOutcome Out = M.execStep(Child.S, Ctx, V);
        if (Out.Result == StepResult::Violated) {
          Cex.Steps = U.Path;
          Cex.Steps.push_back(TraceStep{Ctx, Out.ExecutedPc});
          Cex.V = V;
          Cex.Where = Counterexample::Phase::Parallel;
          report(std::move(Cex));
          return;
        }
        assert(Out.Result == StepResult::Ok && "ready thread must step");
        Child.Path = U.Path;
        Child.Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
        // Advance the local chain before probing: the table stores
        // post-chain states (the child unit's own advanceLocal is then an
        // idempotent no-op).
        if (!detail::advanceLocal(M, Cfg.Por, Child.S, Child.Path, Cex)) {
          report(std::move(Cex));
          return;
        }
        if (!Visited.contains(M, Child.S)) {
          AmpleCount.fetch_add(1);
          Push(std::move(Child));
          return;
        }
        FullCount.fetch_add(1); // proviso hit: expand every ready context
      } else {
        FullCount.fetch_add(1);
      }
    }
    // Expand in reverse so a LIFO owner explores the first ready thread
    // first, like the sequential DFS.
    for (size_t I = Ready.size(); I-- > 0;) {
      if (Stop.load())
        return;
      unsigned Ctx = Ready[I];
      Unit Child;
      Child.S = U.S;
      Violation V;
      ExecOutcome Out = M.execStep(Child.S, Ctx, V);
      if (Out.Result == StepResult::Violated) {
        Cex.Steps = U.Path;
        Cex.Steps.push_back(TraceStep{Ctx, Out.ExecutedPc});
        Cex.V = V;
        Cex.Where = Counterexample::Phase::Parallel;
        report(std::move(Cex));
        return;
      }
      assert(Out.Result == StepResult::Ok && "ready thread must step");
      Child.Path = U.Path;
      Child.Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
      Push(std::move(Child));
    }
  }

  /// Batched expansion (CheckerConfig::BatchWidth >= 2): successors are
  /// generated in SoA batches, fingerprinted together, and probed into
  /// the shard table with one lock acquisition per touched shard
  /// (verify/FrontierBatch.h). Fresh lanes are chained, counted, and
  /// pushed as pre-inserted units here, at the generating worker. The
  /// ample singleton's contains() probe becomes an insert-as-probe,
  /// which only strengthens the C2 insertion-happens-before-expansion
  /// argument: the child is in the table before its unit is pushed.
  void expandBatched(Unit U, const std::vector<unsigned> &Ready,
                     uint64_t &WorkerStates,
                     const std::function<void(Unit)> &Push) {
    static thread_local detail::FrontierBatch Batch;
    const Canonicalizer *Cn = Canon && Canon->active() ? Canon.get() : nullptr;
    Counterexample Cex;
    if (Cfg.Por == PorMode::Ample && Ready.size() >= 2) {
      int AI = detail::selectAmple(M, U.S, Ready);
      if (AI >= 0) {
        unsigned Ctx = Ready[AI];
        if (!Batch.generate(M, Cfg.Por, U.S, &Ctx, nullptr, 1, U.Path, Cex)) {
          report(std::move(Cex));
          return;
        }
        Batch.fingerprint(M, Cn, Visited.hashFn());
        Batch.probeShared(M, Visited);
        if (Batch.ins(0) == detail::InsertOutcome::Fresh) {
          AmpleCount.fetch_add(1);
          ++WorkerStates;
          if (StatesExplored.fetch_add(1) + 1 >= Cfg.MaxStates ||
              Visited.overBudget()) {
            Exhausted.store(true);
            Stop.store(true);
            return;
          }
          Unit Child;
          Child.S = std::move(Batch.state(0));
          Child.Path = std::move(U.Path);
          Child.Path.insert(Child.Path.end(), Batch.suffix(0).begin(),
                            Batch.suffix(0).end());
          Child.PreInserted = true;
          Push(std::move(Child));
          return;
        }
        FullCount.fetch_add(1); // proviso hit: expand every ready context
      } else {
        FullCount.fetch_add(1);
      }
    }
    for (size_t At = 0; At < Ready.size(); At += Cfg.BatchWidth) {
      if (Stop.load())
        return;
      unsigned NGen = static_cast<unsigned>(
          std::min<size_t>(Cfg.BatchWidth, Ready.size() - At));
      if (!Batch.generate(M, Cfg.Por, U.S, Ready.data() + At, nullptr, NGen,
                          U.Path, Cex)) {
        report(std::move(Cex));
        return;
      }
      Batch.fingerprint(M, Cn, Visited.hashFn());
      Batch.probeShared(M, Visited);
      for (unsigned K = 0; K < NGen; ++K) {
        if (Batch.ins(K) != detail::InsertOutcome::Fresh) {
          StatesDeduped.fetch_add(1);
          continue;
        }
        ++WorkerStates;
        if (StatesExplored.fetch_add(1) + 1 >= Cfg.MaxStates ||
            Visited.overBudget()) {
          Exhausted.store(true);
          Stop.store(true);
          return;
        }
      }
      // Push fresh lanes in reverse so a LIFO owner explores the first
      // ready thread first, like the scalar loop.
      for (unsigned K = NGen; K-- > 0;) {
        if (Batch.ins(K) != detail::InsertOutcome::Fresh)
          continue;
        Unit Child;
        Child.S = std::move(Batch.state(K));
        Child.Path = U.Path;
        Child.Path.insert(Child.Path.end(), Batch.suffix(K).begin(),
                          Batch.suffix(K).end());
        Child.PreInserted = true;
        Push(std::move(Child));
      }
    }
  }
};

/// The per-worker search loop: drain the own deque depth-first, steal
/// when dry, exit when the whole search has no pending work.
void workerLoop(SearchShared &Shared, std::vector<WorkDeque> &Deques,
                unsigned Id, uint64_t &WorkerStates, uint64_t &WorkerSteals) {
  const unsigned W = static_cast<unsigned>(Deques.size());
  auto Push = [&](Unit U) {
    Shared.Pending.fetch_add(1);
    Deques[Id].push(std::move(U));
  };
  for (;;) {
    if (Shared.Stop.load() || Shared.Pending.load() == 0)
      return;
    Unit U;
    bool Got = Deques[Id].popBack(U);
    if (!Got) {
      for (unsigned I = 1; I < W && !Got; ++I)
        Got = Deques[(Id + I) % W].stealFront(U);
      if (Got)
        ++WorkerSteals;
    }
    if (!Got) {
      std::this_thread::yield();
      continue;
    }
    Shared.processUnit(std::move(U), WorkerStates, Push);
    Shared.Pending.fetch_sub(1);
  }
}

/// Parallel random falsification: the runs of the burst are claimed in
/// index order; run r is a pure function of (Seed, r); the smallest
/// failing index wins. \returns true when a counterexample was found and
/// stored into \p Result.
bool parallelFalsify(const Machine &M, const CheckerConfig &Cfg,
                     unsigned Workers, const State &S0, CheckResult &Result) {
  std::atomic<uint64_t> NextRun{0};
  std::atomic<uint64_t> MinFail{UINT64_MAX};
  std::mutex BestMu;
  Counterexample BestCex;

  auto Run = [&]() {
    for (;;) {
      uint64_t R = NextRun.fetch_add(1);
      if (R >= Cfg.RandomRuns || R > MinFail.load())
        return;
      Rng Stream(detail::deriveStreamSeed(Cfg.Seed, R));
      Counterexample Cex;
      if (!detail::randomRun(M, Cfg.Por, S0, Stream, Cex)) {
        std::lock_guard<std::mutex> Lock(BestMu);
        if (R < MinFail.load()) {
          MinFail.store(R);
          BestCex = std::move(Cex);
        }
      }
    }
  };

  std::vector<std::thread> Threads;
  for (unsigned I = 1; I < Workers; ++I)
    Threads.emplace_back(Run);
  Run();
  for (std::thread &T : Threads)
    T.join();

  uint64_t Fail = MinFail.load();
  if (Fail == UINT64_MAX) {
    Result.RandomRunsUsed = Cfg.RandomRuns;
    return false;
  }
  // The canonical count: every run before the winner completed cleanly.
  Result.RandomRunsUsed = Fail + 1;
  Result.Ok = false;
  Result.Cex = std::move(BestCex);
  return true;
}

} // namespace

CheckResult psketch::verify::detail::checkCandidateParallel(
    const Machine &M, const CheckerConfig &Cfg, unsigned Workers) {
  assert(Workers >= 2 && "sequential engine handles one worker");
  CheckResult Result;
  Result.WorkersUsed = Workers;
  Result.PerWorkerStates.assign(Workers, 0);

  // Phase 1: the deterministic prologue.
  State S0 = M.initialState();
  {
    Violation V;
    if (!M.runToCompletion(S0, M.prologueCtx(), V)) {
      Counterexample Cex;
      Cex.Where = Counterexample::Phase::Prologue;
      Cex.V = V;
      Result.Ok = false;
      Result.Cex = std::move(Cex);
      return Result;
    }
  }

  // Phase 2: the falsifier burst, fanned out across all workers.
  if (Cfg.UseRandomFalsifier && Cfg.RandomRuns > 0)
    if (parallelFalsify(M, Cfg, Workers, S0, Result))
      return Result;

  // Phase 3a: grow the initial frontier sequentially until there are
  // enough disjoint subtrees to keep every worker busy.
  SearchShared Shared(M, Cfg);
  std::deque<Unit> Frontier;
  {
    const size_t Target = static_cast<size_t>(Workers) * 8;
    auto Push = [&](Unit U) { Frontier.push_back(std::move(U)); };
    Frontier.push_back(Unit{S0, {}});
    while (!Frontier.empty() && Frontier.size() < Target &&
           !Shared.Stop.load()) {
      Unit U = std::move(Frontier.front());
      Frontier.pop_front();
      Shared.processUnit(std::move(U), Result.PerWorkerStates[0], Push);
    }
  }

  // Phase 3b: hand the frontier to the per-worker deques and search.
  if (!Shared.Stop.load() && !Frontier.empty()) {
    std::vector<WorkDeque> Deques(Workers);
    for (size_t I = 0; !Frontier.empty(); ++I) {
      Shared.Pending.fetch_add(1);
      Deques[I % Workers].push(std::move(Frontier.front()));
      Frontier.pop_front();
    }
    std::vector<uint64_t> Steals(Workers, 0);
    std::vector<std::thread> Threads;
    for (unsigned I = 1; I < Workers; ++I)
      Threads.emplace_back([&Shared, &Deques, &Result, &Steals, I]() {
        workerLoop(Shared, Deques, I, Result.PerWorkerStates[I], Steals[I]);
      });
    workerLoop(Shared, Deques, 0, Result.PerWorkerStates[0], Steals[0]);
    for (std::thread &T : Threads)
      T.join();
    for (uint64_t S : Steals)
      Result.Steals += S;
  }

  Result.StatesExplored = Shared.StatesExplored.load();
  Result.StatesDeduped = Shared.StatesDeduped.load();
  Result.AmpleStates = Shared.AmpleCount.load();
  Result.FullExpansions = Shared.FullCount.load();
  Result.Exhausted = Shared.Exhausted.load();
  Result.FingerprintCollisions = Shared.Visited.collisions();
  Result.VisitedBytes = Shared.Visited.keyBytes();
  Result.BudgetAborted = Shared.Visited.overBudget();
  if (Shared.Spill) {
    Result.VisitedBytes += Shared.Spill->filterBytes();
    Result.SpilledStates = Shared.Spill->spilledStates();
    Result.SpillBytes = Shared.Spill->spillBytes();
    Result.RunMerges = Shared.Spill->runMerges();
    Result.FilterFalseHits = Shared.Spill->filterFalseHits();
    Result.SpillFallback = !Shared.Spill->ok();
  }
  if (Shared.Canon) {
    Result.SymmetryOrbits = Shared.Canon->numOrbits();
    Result.CanonHits = Shared.Canon->canonHits();
    Result.CanonTime = Shared.Canon->buildSeconds();
  }

  std::optional<Counterexample> Found = std::move(Shared.BestCex);
  if (!Found) {
    Result.Ok = true; // exhaustive (or up to the budget): no violation
    return Result;
  }

  Result.Ok = false;
  if (Cfg.DeterministicCex) {
    // Re-derive the canonical trace with the deterministic sequential
    // engine (falsifier off: phase 2 already cleared, and its stream
    // policy differs). A violation exists, so the sequential search
    // finds its canonical first one — the same for any worker count.
    // Ample is demoted to Local for the rerun: ample traces are
    // artifacts of the reduced graph, and the Local rerun is exactly
    // what the sequential ample engine itself re-derives with, so the
    // canonical trace is also independent of the reduction (docs/POR.md).
    // Symmetry is switched off for the same reason: canonical merging
    // changes which violation the search reaches first, and the rerun
    // over the raw graph makes the trace independent of the quotient
    // (docs/SYMMETRY.md).
    CheckerConfig ReCfg = Cfg;
    if (ReCfg.Por == PorMode::Ample)
      ReCfg.Por = PorMode::Local;
    ReCfg.Symmetry = SymmetryMode::Off;
    // Batched generation reshapes which trace surfaces first; the rerun
    // over the scalar engine keeps the trace width-independent.
    ReCfg.BatchWidth = 1;
    CheckResult Seq = detail::checkCandidateSequential(M, ReCfg, false);
    Result.StatesExplored += Seq.StatesExplored;
    Result.StatesDeduped += Seq.StatesDeduped;
    Result.FingerprintCollisions += Seq.FingerprintCollisions;
    Result.VisitedBytes += Seq.VisitedBytes;
    Result.SpilledStates += Seq.SpilledStates;
    Result.SpillBytes += Seq.SpillBytes;
    Result.RunMerges += Seq.RunMerges;
    Result.FilterFalseHits += Seq.FilterFalseHits;
    Result.BudgetAborted = Result.BudgetAborted || Seq.BudgetAborted;
    Result.SpillFallback = Result.SpillFallback || Seq.SpillFallback;
    if (!Seq.Ok && Seq.Cex) {
      Result.Cex = std::move(Seq.Cex);
      return Result;
    }
    // Unreachable unless the sequential rerun hit the state budget
    // before the violation; fall back to the parallel-found trace.
    Result.Exhausted = Result.Exhausted || Seq.Exhausted;
  }
  Result.Cex = std::move(*Found);
  return Result;
}
