//===- verify/FrontierBatch.h - SoA successor batches -----------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header: the batched frontier engine behind
/// CheckerConfig::BatchWidth (docs/BATCHING.md). A FrontierBatch owns up
/// to one batch of successor "lanes" of a single parent state: each lane
/// is the parent after one scheduling choice plus its POR local chain,
/// kept as a full AoS State (traces, expansion, and epilogue checks all
/// want whole states) while the scheduler-relevant prefixes are
/// additionally transposed into a word-major SoA SchedBlock — the shape
/// the batched orbit kernel (Canonicalizer::canonicalizeBatch), the
/// batched fingerprint (Machine::fingerprintBatchWith / hashWordsBatch),
/// and the batched visited probes (verify/Visited.h) consume directly.
///
/// The pipeline is generate() -> fingerprint() -> probeMask()/probeShared(),
/// then the caller walks the lanes (descending into live ones). Every
/// stage is element-wise bit-identical to the scalar path it replaces:
/// batching regroups work across sibling successors, it never changes
/// what any single successor computes. What it does change is *when*
/// siblings enter the visited table (eagerly, before the first sibling's
/// subtree is explored), which can re-shape the search tree — verdicts
/// are unaffected (the explored set argument in docs/BATCHING.md), and
/// under CheckerConfig::DeterministicCex the reported counterexample is
/// re-derived scalar, so it is byte-identical across batch widths.
///
/// classify() adds the batch engine's readiness memoization: a thread's
/// readiness is a function of its (normalized) pc and of the cells its
/// guard/wait conditions read — all contained in its static step
/// footprint. A lane re-evaluates a thread only when the lane's executed
/// chain stepped that thread or conflicts with that footprint; otherwise
/// the parent's cached verdict is reused.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_VERIFY_FRONTIERBATCH_H
#define PSKETCH_VERIFY_FRONTIERBATCH_H

#include "exec/Machine.h"
#include "verify/Canon.h"
#include "verify/SearchCore.h"
#include "verify/Visited.h"

#include <cstdint>
#include <vector>

namespace psketch {
namespace verify {
namespace detail {

/// One batch of successor lanes in SoA form (parallel arrays indexed by
/// lane). Buffers are grow-only and reused across generations, so a
/// steady-state search allocates nothing per batch.
class FrontierBatch {
public:
  /// Generates lanes 0..N-1: lane K is \p Parent after executing context
  /// Ctxs[K]'s next step, followed by its POR local chain (PorMode::Off
  /// chains nothing). ChildSleep[K] (null = all zero) is recorded for the
  /// later mask probe. Lanes are processed in order and the first
  /// violating one wins: \p Cex receives \p Path + the lane's executed
  /// steps and generate() returns false. NOTE the scalar DFS would have
  /// explored choice K's whole subtree before executing choice K+1, so a
  /// generation-time violation on a later lane can surface before a
  /// deeper violation on an earlier one — a trace (never verdict)
  /// divergence the DeterministicCex re-derivation erases.
  bool generate(const exec::Machine &M, PorMode Por,
                const exec::State &Parent, const unsigned *Ctxs,
                const uint64_t *ChildSleep, unsigned NIn,
                const std::vector<TraceStep> &Path, Counterexample &Cex);

  /// Multi-parent generation: lane K is *Parents[K] after executing
  /// context Ctxs[K]'s next step plus its POR local chain, with sleep
  /// masks all zero. This is the cross-parent pooling entry point: one
  /// parent yields at most numThreads() successors, so few-threaded
  /// programs can only fill wide (SIMD-profitable) batches by pooling
  /// successors of several frontier states — the batched BFS does. On a
  /// violating lane, \p Cex receives ONLY that lane's executed steps
  /// (the caller owns each parent's path and prepends it) and
  /// \p FailLane identifies the lane, then generateMulti returns false.
  bool generateMulti(const exec::Machine &M, PorMode Por,
                     const exec::State *const *Parents, const unsigned *Ctxs,
                     unsigned NIn, Counterexample &Cex, unsigned &FailLane);

  /// Generates the single root lane: no scheduling step, just \p Start's
  /// local chain (the suffix carries the chain steps). Classification of
  /// the root is always full (pass null parent verdicts).
  bool generateRoot(const exec::Machine &M, PorMode Por,
                    const exec::State &Start,
                    const std::vector<TraceStep> &Path, Counterexample &Cex);

  /// Computes every lane's (canonical) fingerprint with \p Hash. When
  /// \p Canon is active the lanes' scheduler prefixes are transposed
  /// into the SoA block, canonicalized as a batch, and hashed in one
  /// batched (SIMD-dispatched) sweep; fp(K) then serves both the
  /// visited probe and the DFS on-stack cycle-proviso key — one
  /// canonicalization and one hash pass per lane, where the scalar
  /// ample engine pays two of each. With \p Canon inactive the block is
  /// never built: the lanes are hashed straight from their AoS words by
  /// the register-transposing kernel (hashWordsBatchPtrs) — a staging
  /// copy would cost more than it saves (measured; docs/BATCHING.md) —
  /// and the probes read the AoS states directly.
  void fingerprint(const exec::Machine &M, const Canonicalizer *Canon,
                   StateHashFn Hash);

  /// Sequential mask-aware probe: ins(K)/wake(K) afterwards match what
  /// VisitedTable::insertMask would have returned for lane K entered
  /// with sleep(K). Requires fingerprint() first (lane fingerprints
  /// place Exact-mode entries too). In Exact mode the whole batch of
  /// probes runs VisitedTable's prefetch-pipelined sweep; under
  /// VisitedStore::Spill the table additionally pre-answers the batch's
  /// disk-tier membership in one sorted sweep over the on-disk runs
  /// (VisitedCell::spillHints), so lanes that miss in RAM don't pay a
  /// cold binary search each (docs/SPILL.md).
  void probeMask(const exec::Machine &M, VisitedTable &Visited);

  /// Parallel probe (sleep-free): ins(K) is Fresh or Prune matching
  /// ShardedVisited::insert on lane K; each touched shard is locked once
  /// per batch. Requires fingerprint() first (the fingerprint picks the
  /// shard — in Exact mode too, and the spill shard with it: under
  /// VisitedStore::Spill each shard group's disk hints are batch-probed
  /// under the same single lock acquisition).
  void probeShared(const exec::Machine &M, ShardedVisited &Visited);

  /// Classifies lane \p K's threads into ReadyOut/BlockedOut and caches
  /// per-thread verdicts (Readiness bytes) in \p VerdictsOut, reusing
  /// \p ParentVerdicts (null = classify everything) where the lane's
  /// chain provably left a thread's readiness alone (file comment).
  /// \returns false and fills \p Cex (Steps = \p Path + the violating
  /// probe) when some wait/guard evaluation violates memory safety —
  /// identical to classifyAll.
  bool classify(unsigned K, const exec::Machine &M,
                const uint8_t *ParentVerdicts,
                std::vector<unsigned> &ReadyOut,
                std::vector<TraceStep> &BlockedOut,
                std::vector<uint8_t> &VerdictsOut,
                const std::vector<TraceStep> &Path, Counterexample &Cex);

  unsigned size() const { return N; }
  void clear() { N = 0; }

  exec::State &state(unsigned K) { return SArr[K]; }
  const std::vector<TraceStep> &suffix(unsigned K) const { return Suffix[K]; }
  uint64_t fp(unsigned K) const { return FpArr[K]; }
  InsertOutcome ins(unsigned K) const { return InsArr[K]; }
  uint64_t wake(unsigned K) const { return WakeArr[K]; }
  uint64_t sleep(unsigned K) const { return SleepArr[K]; }
  unsigned ctx(unsigned K) const { return CtxArr[K]; }

private:
  /// Re-shapes the parallel arrays for \p NIn lanes (grow-only).
  void grow(unsigned NIn);

  /// Runs lane \p K's local chain, folding executed steps into
  /// SteppedMask (and, when \p TrackFp, ChainFp). Shared by
  /// generate()/generateRoot().
  bool chainLane(const exec::Machine &M, PorMode Por, unsigned K,
                 const std::vector<TraceStep> &Path, Counterexample &Cex,
                 bool TrackFp);

  unsigned N = 0;
  std::vector<exec::State> SArr;
  std::vector<std::vector<TraceStep>> Suffix;
  std::vector<exec::Footprint> ChainFp;
  std::vector<uint64_t> SteppedMask;
  std::vector<uint64_t> SleepArr, WakeArr, FpArr;
  std::vector<unsigned> CtxArr, PermArr;
  std::vector<InsertOutcome> InsArr;
  std::vector<exec::ExecOutcome> Outcomes;
  std::vector<exec::Violation> Viols;
  std::vector<uint8_t> FreshArr;        ///< probeShared scratch
  std::vector<const int64_t *> WordPtrs; ///< probeMask fast-path scratch
  exec::SchedBlock Raw, Canonical;
  bool UseCanon = false; ///< which block fingerprint() probed through
};

} // namespace detail
} // namespace verify
} // namespace psketch

#endif // PSKETCH_VERIFY_FRONTIERBATCH_H
