//===- verify/Trace.h - Counterexample traces -------------------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counterexample vocabulary shared by the model checker and the
/// inductive synthesizer. A trace is a sequence of (thread, step) pairs in
/// execution order — exactly the paper's notion of an observation: "Each
/// observation is a fixed thread schedule."
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_VERIFY_TRACE_H
#define PSKETCH_VERIFY_TRACE_H

#include "exec/Machine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace psketch {
namespace verify {

/// One executed (or blocking) step of the parallel phase.
struct TraceStep {
  unsigned Thread = 0;
  uint32_t Pc = 0;

  bool operator==(const TraceStep &O) const {
    return Thread == O.Thread && Pc == O.Pc;
  }
};

/// A failing execution of one candidate.
struct Counterexample {
  enum class Phase : uint8_t { Prologue, Parallel, Epilogue };

  /// Where the violation fired. Prologue/epilogue are deterministic, so
  /// the parallel steps still fully determine the failure.
  Phase Where = Phase::Parallel;

  /// Parallel-phase steps in execution order (dynamic no-ops included;
  /// statically dead steps never appear).
  std::vector<TraceStep> Steps;

  /// The violation itself.
  exec::Violation V;

  /// For deadlocks: the blocked conditional-atomic step of each live
  /// thread (the paper's deadlock set D).
  std::vector<TraceStep> DeadlockSet;

  /// Human-readable rendering for diagnostics.
  std::string describe(const exec::Machine &M) const;
};

} // namespace verify
} // namespace psketch

#endif // PSKETCH_VERIFY_TRACE_H
