//===- verify/FrontierBatch.cpp --------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "verify/FrontierBatch.h"

#include <cassert>

using namespace psketch;
using namespace psketch::verify;
using namespace psketch::verify::detail;

void FrontierBatch::grow(unsigned NIn) {
  if (SArr.size() >= NIn)
    return;
  SArr.resize(NIn);
  Suffix.resize(NIn);
  ChainFp.resize(NIn);
  SteppedMask.resize(NIn);
  SleepArr.resize(NIn);
  WakeArr.resize(NIn);
  FpArr.resize(NIn);
  CtxArr.resize(NIn);
  PermArr.resize(NIn);
  InsArr.resize(NIn);
  Outcomes.resize(NIn);
  Viols.resize(NIn);
  FreshArr.resize(NIn);
}

bool FrontierBatch::chainLane(const exec::Machine &M, PorMode Por, unsigned K,
                              const std::vector<TraceStep> &Path,
                              Counterexample &Cex, bool TrackFp) {
  size_t Before = Suffix[K].size();
  Counterexample Local;
  if (!advanceLocal(M, Por, SArr[K], Suffix[K], Local)) {
    // advanceLocal already appended the violating step to Suffix[K] and
    // copied it into Local.Steps, so Path + Local.Steps is the full trace.
    Cex.Steps = Path;
    Cex.Steps.insert(Cex.Steps.end(), Local.Steps.begin(), Local.Steps.end());
    Cex.V = Local.V;
    Cex.Where = Local.Where;
    Cex.DeadlockSet = Local.DeadlockSet;
    return false;
  }
  for (size_t I = Before; I < Suffix[K].size(); ++I) {
    const TraceStep &St = Suffix[K][I];
    if (St.Thread < 64)
      SteppedMask[K] |= 1ull << St.Thread;
    if (TrackFp)
      ChainFp[K].unionWith(M.stepFootprint(St.Thread, St.Pc));
  }
  return true;
}

bool FrontierBatch::generate(const exec::Machine &M, PorMode Por,
                             const exec::State &Parent, const unsigned *Ctxs,
                             const uint64_t *ChildSleep, unsigned NIn,
                             const std::vector<TraceStep> &Path,
                             Counterexample &Cex) {
  grow(NIn);
  N = NIn;
  M.expandBatch(Parent, Ctxs, NIn, SArr.data(), Outcomes.data(), Viols.data());
  for (unsigned K = 0; K < NIn; ++K) {
    CtxArr[K] = Ctxs[K];
    SleepArr[K] = ChildSleep ? ChildSleep[K] : 0;
    if (Outcomes[K].Result == exec::StepResult::Violated) {
      Cex.Steps = Path;
      Cex.Steps.push_back(TraceStep{Ctxs[K], Outcomes[K].ExecutedPc});
      Cex.V = Viols[K];
      Cex.Where = Counterexample::Phase::Parallel;
      return false;
    }
    assert(Outcomes[K].Result == exec::StepResult::Ok &&
           "chosen thread must step");
    Suffix[K].clear();
    Suffix[K].push_back(TraceStep{Ctxs[K], Outcomes[K].ExecutedPc});
    SteppedMask[K] = Ctxs[K] < 64 ? (1ull << Ctxs[K]) : 0;
    ChainFp[K] = M.stepFootprint(Ctxs[K], Outcomes[K].ExecutedPc);
    if (!chainLane(M, Por, K, Path, Cex, /*TrackFp=*/true))
      return false;
  }
  return true;
}

bool FrontierBatch::generateMulti(const exec::Machine &M, PorMode Por,
                                  const exec::State *const *Parents,
                                  const unsigned *Ctxs, unsigned NIn,
                                  Counterexample &Cex, unsigned &FailLane) {
  static const std::vector<TraceStep> EmptyPath;
  grow(NIn);
  N = NIn;
  M.expandBatch(Parents, Ctxs, NIn, SArr.data(), Outcomes.data(),
                Viols.data());
  for (unsigned K = 0; K < NIn; ++K) {
    CtxArr[K] = Ctxs[K];
    SleepArr[K] = 0;
    if (Outcomes[K].Result == exec::StepResult::Violated) {
      FailLane = K;
      Cex.Steps = {TraceStep{Ctxs[K], Outcomes[K].ExecutedPc}};
      Cex.V = Viols[K];
      Cex.Where = Counterexample::Phase::Parallel;
      return false;
    }
    assert(Outcomes[K].Result == exec::StepResult::Ok &&
           "chosen thread must step");
    Suffix[K].clear();
    Suffix[K].push_back(TraceStep{Ctxs[K], Outcomes[K].ExecutedPc});
    SteppedMask[K] = Ctxs[K] < 64 ? (1ull << Ctxs[K]) : 0;
    ChainFp[K] = M.stepFootprint(Ctxs[K], Outcomes[K].ExecutedPc);
    if (!chainLane(M, Por, K, EmptyPath, Cex, /*TrackFp=*/true)) {
      FailLane = K;
      return false;
    }
  }
  return true;
}

bool FrontierBatch::generateRoot(const exec::Machine &M, PorMode Por,
                                 const exec::State &Start,
                                 const std::vector<TraceStep> &Path,
                                 Counterexample &Cex) {
  grow(1);
  N = 1;
  SArr[0] = Start;
  CtxArr[0] = 0;
  SleepArr[0] = 0;
  Suffix[0].clear();
  // The root has no parent verdicts to reuse; force full classification
  // and skip footprint accounting.
  SteppedMask[0] = ~0ull;
  ChainFp[0] = exec::Footprint();
  return chainLane(M, Por, 0, Path, Cex, /*TrackFp=*/false);
}

void FrontierBatch::fingerprint(const exec::Machine &M,
                                const Canonicalizer *Canon,
                                StateHashFn Hash) {
  UseCanon = Canon && Canon->active();
  if (UseCanon) {
    Raw.reset(M.schedWords(), N);
    for (unsigned K = 0; K < N; ++K)
      Raw.setLane(K, SArr[K].words());
    Canon->canonicalizeBatch(Raw, N, Canonical, PermArr.data());
    M.fingerprintBatchWith(Canonical, N, Hash, FpArr.data());
    return;
  }
  // No canonicalization: no SoA block at all. The SIMD kernel
  // transposes lanes in registers as it hashes (hashWordsBatchPtrs),
  // and the probes read the AoS states directly, so the word-major
  // staging copy — pure overhead at these batch widths (measured;
  // docs/BATCHING.md) — never happens.
  WordPtrs.resize(N);
  for (unsigned K = 0; K < N; ++K) {
    PermArr[K] = Canonicalizer::IdentityPerm;
    WordPtrs[K] = SArr[K].words();
  }
  M.fingerprintBatchPtrsWith(WordPtrs.data(), N, Hash, FpArr.data());
}

void FrontierBatch::probeMask(const exec::Machine &M, VisitedTable &Visited) {
  // Identity coordinates: probe the lane states in place (in Exact mode
  // through the prefetch-pipelined sweep; under VisitedStore::Spill the
  // table also pre-answers the batch's disk-tier membership in one
  // sorted run sweep). Sleep masks need no automorphism translation,
  // and the SoA block was never built.
  if (!UseCanon) {
    WordPtrs.resize(N);
    for (unsigned K = 0; K < N; ++K)
      WordPtrs[K] = SArr[K].words();
    Visited.insertMaskWordsBatch(M, WordPtrs.data(), FpArr.data(),
                                 SleepArr.data(), N, InsArr.data(),
                                 WakeArr.data());
    return;
  }
  Visited.insertMaskBatch(M, Canonical, N, FpArr.data(), PermArr.data(),
                          SleepArr.data(), InsArr.data(), WakeArr.data());
}

void FrontierBatch::probeShared(const exec::Machine &M,
                                ShardedVisited &Visited) {
  // With no canonicalizer the block was never built: Canonical is only
  // read when AoS is null, i.e. in the canon case where it is valid.
  Visited.insertBatch(M, Canonical, N, FpArr.data(), FreshArr.data(),
                      UseCanon ? nullptr : SArr.data());
  for (unsigned K = 0; K < N; ++K) {
    InsArr[K] = FreshArr[K] ? InsertOutcome::Fresh : InsertOutcome::Prune;
    WakeArr[K] = 0;
  }
}

bool FrontierBatch::classify(unsigned K, const exec::Machine &M,
                             const uint8_t *ParentVerdicts,
                             std::vector<unsigned> &ReadyOut,
                             std::vector<TraceStep> &BlockedOut,
                             std::vector<uint8_t> &VerdictsOut,
                             const std::vector<TraceStep> &Path,
                             Counterexample &Cex) {
  ReadyOut.clear();
  BlockedOut.clear();
  VerdictsOut.resize(M.numThreads());
  exec::State &S = SArr[K];
  for (unsigned Ctx = 0; Ctx < M.numThreads(); ++Ctx) {
    Readiness R;
    // A thread's readiness depends only on its (already normalized) pc
    // and the cells its guard/wait conditions read, all inside its static
    // step footprint; reuse the parent's verdict when this lane's chain
    // provably left both alone. Threads >= 64 fall outside the stepped
    // mask and are always re-evaluated.
    bool Reuse = ParentVerdicts && Ctx < 64 &&
                 !((SteppedMask[K] >> Ctx) & 1) &&
                 !ChainFp[K].conflictsWith(M.stepFootprint(Ctx, S.pc(Ctx)));
    if (Reuse) {
      R = static_cast<Readiness>(ParentVerdicts[Ctx]);
      assert(R != Readiness::WaitViolation && "parent verdict survived");
    } else {
      exec::Violation V;
      R = readiness(M, S, Ctx, V);
      if (R == Readiness::WaitViolation) {
        Cex.Steps = Path;
        Cex.Steps.push_back(TraceStep{Ctx, S.pc(Ctx)});
        Cex.V = V;
        Cex.Where = Counterexample::Phase::Parallel;
        return false;
      }
    }
    VerdictsOut[Ctx] = static_cast<uint8_t>(R);
    if (R == Readiness::Ready)
      ReadyOut.push_back(Ctx);
    else if (R == Readiness::Blocked)
      BlockedOut.push_back(TraceStep{Ctx, S.pc(Ctx)});
  }
  return true;
}
