//===- verify/ModelChecker.h - Explicit-state model checking ----*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification procedure of the CEGIS loop: an explicit-state model
/// checker over all thread interleavings of one candidate, standing in for
/// the paper's use of SPIN [13]. It checks the same properties PSKETCH
/// delegates to its verifier: programmer assertions, implicit memory
/// safety, bounded termination (loop-bound asserts injected by the
/// flattener), and deadlock freedom; and it produces exactly what the
/// synthesizer needs — a bounded counterexample trace.
///
/// Two standard engineering devices (both ablatable, see DESIGN.md):
///  * a random-schedule falsifier runs first, because most bad candidates
///    die on one of a handful of cheap random schedules;
///  * a partial-order reduction (CheckerConfig::Por, docs/POR.md) prunes
///    interleavings that only reorder commuting steps: PorMode::Local
///    runs thread-local steps without a scheduling choice, PorMode::Ample
///    (the default) additionally expands a single thread alone wherever
///    its next step's static footprint (exec/Footprint.h) is independent
///    of everything the other threads may still do, with sleep sets
///    layered on in the sequential DFS.
///
/// The checker is optionally multi-threaded (CheckerConfig::NumThreads):
/// per-worker DFS over disjoint frontier subtrees with work-stealing, a
/// sharded concurrent seen-state table, and cooperative cancellation on
/// the first violation (docs/PARALLEL.md describes the design).
///
/// Reproducibility contract
/// ------------------------
///  * NumThreads == 1 is deterministic single-threaded search with ONE
///    falsifier stream seeded directly from CheckerConfig::Seed. Verdict,
///    counterexample, and state counts depend only on the candidate and
///    the config. Por == Local reproduces the pre-ample engine bit for
///    bit; under Por == Ample an exhaustive-phase violation is (with
///    DeterministicCex, the default) re-derived by a Local-mode search,
///    so the reported counterexample is the same canonical trace Local
///    mode reports — only the state counts differ.
///  * NumThreads >= 2 (or 0 = hardware concurrency): verdict and
///    counterexample depend only on (Seed, RandomRuns, Order, Por,
///    DeterministicCex) — NOT on the worker count or on OS scheduling.
///    Falsifier run r always draws from an independent SplitMix64 stream
///    derived from (Seed, r), so which worker executes which run is
///    irrelevant; the reported counterexample is the one with the
///    smallest failing run index. A violation found by the exhaustive
///    phase is (under DeterministicCex, the default) re-derived by a
///    deterministic sequential search — in Local mode when Por is Ample,
///    since ample-mode traces are artifacts of the reduced graph —
///    yielding the canonical minimal trace: the same trace for 1, 2, and
///    64 workers.
///    Exception: runs that hit MaxStates (Result.Exhausted) explored a
///    timing-dependent subset of the space, so their "Ok up to the
///    budget" verdict carries the same caveat the budget itself does.
///    StatesExplored / StatesDeduped / Steals / PerWorkerStates are
///    scheduling-dependent statistics, never part of the verdict; under
///    Por == Ample with NumThreads >= 2 even StatesExplored at a fixed
///    worker count can vary across runs (the cycle-proviso probe races
///    against insertion), which is why the POR agreement gates compare
///    verdicts, never state counts.
///  * SymmetryMode::Orbit (the default) keeps every clause: search states
///    stay raw (only visited-table probe keys are canonicalized), so
///    every reported trace is a real execution, and a violation found
///    under an active symmetry is (with DeterministicCex) re-derived
///    with Symmetry == Off — symmetry pruning, like ample reduction, can
///    change which violation a search reaches first, and the
///    re-derivation restores the canonical trace. Verdicts agree with
///    Off by the automorphism argument in docs/SYMMETRY.md; state counts
///    shrink by up to the orbit size.
///  * CheckerConfig::BatchWidth >= 2 (the batched frontier engine,
///    docs/BATCHING.md) keeps every clause: batching regroups sibling
///    successors into SoA blocks for SIMD fingerprinting and batched
///    visited probes but explores the same state set, so verdicts agree
///    with BatchWidth == 1; a violation found batched is (with
///    DeterministicCex) re-derived by a scalar sequential search, so the
///    reported counterexample is byte-identical as well. State counts
///    can differ only in which sibling a dedup is charged to, never in
///    the Fresh total.
///  * VisitedMode::Fingerprint keeps both clauses, with one asterisk: if
///    two distinct states genuinely collide in 64 bits (probability
///    ~n^2/2^65, measurable via AuditFingerprints), which of the two the
///    parallel table admits first is timing-dependent, so the contract
///    holds "absent fingerprint collisions". Collisions can only hide
///    states — never fabricate a counterexample (docs/PARALLEL.md §5).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_VERIFY_MODELCHECKER_H
#define PSKETCH_VERIFY_MODELCHECKER_H

#include "exec/Machine.h"
#include "verify/Trace.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace psketch {
namespace verify {

/// Exhaustive-search order. DFS is cheaper on memory; BFS returns
/// shortest counterexamples, which can be stronger observations for the
/// synthesizer (measured by bench_cex_ablation).
enum class SearchOrder : uint8_t { Dfs, Bfs };

/// What the visited table stores per state (docs/PARALLEL.md §5).
///  * Exact: the full scheduler-relevant state key (Machine::encodeState)
///    — today's semantics, byte-for-byte dedup.
///  * Fingerprint: an 8-byte SplitMix-mixed hash of the same key (SPIN-
///    lineage hash compaction). Orders of magnitude less memory per
///    state; the trade is a ~n^2/2^65 chance that two distinct states
///    collide, in which case one subtree is wrongly deduped — a missed
///    state is possible, a spurious counterexample is not (every reported
///    trace is a real execution). CheckerConfig::AuditFingerprints
///    measures exactly this risk at runtime.
enum class VisitedMode : uint8_t { Exact, Fingerprint };

/// Partial-order reduction mode (docs/POR.md). Verdicts agree across all
/// three modes by construction; state counts and (without
/// DeterministicCex) traces differ.
///  * Off: every ready context branches at every state — the unreduced
///    interleaving graph.
///  * Local: steps that touch only thread-local state (or whose dynamic
///    guard is false) run without a scheduling choice
///    (Machine::nextStepIsLocal). This is the pre-ample behaviour.
///  * Ample (default): Local, plus SPIN-class ample sets — a state whose
///    some ready context's next step is statically independent of every
///    other thread's remaining steps (Machine::singletonIndependent)
///    expands that context alone, guarded by a per-engine cycle proviso;
///    the sequential DFS additionally prunes commuting re-expansions via
///    sleep sets.
/// Migration note: this enum replaces the old `bool UsePOR` — `false`
/// maps to Off, `true` to Local.
enum class PorMode : uint8_t { Off, Local, Ample };

/// Symmetry reduction (docs/SYMMETRY.md). Orthogonal to and composable
/// with PorMode: POR prunes interleavings, symmetry prunes states.
///  * Off: every state is its own visited-table key.
///  * Orbit (default): the checker runs the static symmetry inference
///    (analysis/SymmetryInfer.h) on the candidate; when it proves a
///    non-trivial thread orbit, every visited-table probe keys on the
///    lexicographically minimal image of the state under the accepted
///    automorphisms (verify/Canon.h), so states differing only by a
///    symmetric-thread permutation collapse to one representative. When
///    the inference refuses (asymmetric candidate, heap-owning bodies,
///    > 8 threads), Orbit behaves exactly like Off.
enum class SymmetryMode : uint8_t { Off, Orbit };

/// Where the visited set lives (docs/SPILL.md).
///  * Memory (default): today's purely in-RAM tables. When
///    CheckerConfig::VisitedBudgetBytes is nonzero it acts as an abort
///    watermark: crossing it ends the search with Exhausted (and
///    CheckResult::BudgetAborted), exactly like MaxStates.
///  * Spill: a two-tier store. The in-RAM tables are bounded by
///    VisitedBudgetBytes as an EVICTION watermark: crossing it migrates
///    fully-explored fingerprints (stored sleep mask 0 — a disk hit is
///    always a sound Prune) to sharded, log-structured, mmap'd runs of
///    sorted 8-byte fingerprints under SpillDir, each shard fronted by
///    an in-memory tag filter with no false negatives. Probes go filter
///    → in-RAM tier → binary search over the runs, batched through the
///    frontier pipeline. Spilled entries are fingerprint-grade even when
///    the in-RAM tier is Exact (key bytes are dropped on eviction — the
///    VisitedMode::Fingerprint one-sided-error trade applied to the cold
///    set only; collisions can hide states, never fabricate a trace).
///    I/O failure is never fatal: the store stops evicting and the
///    search continues in RAM (CheckResult::SpillFallback).
enum class VisitedStore : uint8_t { Memory, Spill };

/// Tuning knobs for the checker.
struct CheckerConfig {
  bool UseRandomFalsifier = true; ///< try random schedules before DFS
  unsigned RandomRuns = 64;       ///< how many random schedules
  PorMode Por = PorMode::Ample;   ///< partial-order reduction (see enum)
  /// Symmetry reduction (see the SymmetryMode doc). Defaults to Orbit:
  /// canonicalization engages automatically whenever the inference
  /// proves a non-trivial orbit for the candidate, and is a no-op
  /// otherwise.
  SymmetryMode Symmetry = SymmetryMode::Orbit;
  SearchOrder Order = SearchOrder::Dfs;
  uint64_t MaxStates = 4000000;   ///< exploration safety net
  uint64_t Seed = 1;              ///< random falsifier seed
  /// Checker workers: 1 = exact legacy single-threaded behaviour,
  /// 0 = hardware concurrency, N = that many workers.
  unsigned NumThreads = 1;
  /// When true (default) a violation found by the exhaustive phase is
  /// re-derived by a deterministic sequential search so the reported
  /// counterexample is the canonical minimal trace regardless of worker
  /// timing — and, under Por == Ample, regardless of the reduction: the
  /// re-derivation runs in Local mode, so Ample reports the same trace
  /// Local would (see the reproducibility contract above and docs/POR.md).
  /// When false the first trace the search found is reported — faster on
  /// failing candidates, but parallel traces may vary across runs and
  /// ample traces are artifacts of the reduced graph. With NumThreads ==
  /// 1 this only matters for Por == Ample (Off/Local sequential searches
  /// are already canonical).
  bool DeterministicCex = true;
  /// Visited-table representation: Exact (default, full keys) or
  /// Fingerprint (8-byte hashes; see the VisitedMode doc).
  VisitedMode Visited = VisitedMode::Exact;
  /// Fingerprint mode only: on a fingerprint hit, compare the exact key
  /// against a bounded side-table of the keys behind that fingerprint.
  /// A mismatch is a genuine collision — it is counted in
  /// CheckResult::FingerprintCollisions and the state is explored anyway
  /// (the Exact fallback), so an audited run with zero collisions
  /// provably explored the same states Exact mode would have.
  bool AuditFingerprints = false;
  /// Cap on audit side-table entries (full keys kept for auditing);
  /// beyond it, new fingerprints go unaudited to bound memory.
  uint64_t AuditBudget = 1u << 20;
  /// Sequential DFS engine: apply/undo delta log (default) or the legacy
  /// copy-per-successor loop. Identical results either way (the
  /// equivalence is tested); the knob exists for benchmarking and as an
  /// escape hatch. BFS and the parallel engine always copy — their
  /// frontiers outlive the step that created them.
  bool UseUndoLog = true;
  /// Successor batch width (docs/BATCHING.md). 1 (default) runs the
  /// scalar engines bit-for-bit unchanged. >= 2 routes the exhaustive
  /// phase through the batched frontier engine: up to BatchWidth
  /// successors of one state are generated together into an SoA block,
  /// then canonicalized, fingerprinted and probed against the visited
  /// table as a batch (SIMD-accelerated where -DPSKETCH_SIMD allows).
  /// Verdicts agree with BatchWidth == 1 by construction — batching only
  /// changes the order siblings enter the visited table, never the
  /// explored set — and under DeterministicCex (the default) a violation
  /// found by a batched search is re-derived scalar, so the reported
  /// counterexample is byte-identical to the BatchWidth == 1 trace.
  /// Typical sweet spot: DefaultBatchWidth.
  unsigned BatchWidth = 1;
  /// Visited-store tier (see the VisitedStore doc): Memory (default)
  /// keeps every visited key in RAM; Spill evicts fully-explored
  /// fingerprints to sorted on-disk runs when VisitedBudgetBytes is
  /// crossed.
  VisitedStore Store = VisitedStore::Memory;
  /// Spill mode only: directory to create the run files under (a unique
  /// per-search subdirectory is created inside it and removed when the
  /// search ends). Empty = the system temp directory.
  std::string SpillDir;
  /// Byte budget for the in-RAM visited tier, measured by
  /// CheckResult::VisitedBytes accounting. 0 = unlimited. With Store ==
  /// Memory a nonzero budget is an abort watermark (Exhausted +
  /// BudgetAborted once crossed); with Store == Spill it is the eviction
  /// watermark that triggers spilling.
  uint64_t VisitedBudgetBytes = 0;
};

/// The batch width `psketch_tool --batch` (and the benches) use when the
/// caller asks for batching without naming a width: wide enough to
/// amortize per-batch fixed costs and fill AVX2 lanes, small enough that
/// a frame's worth of sibling states stays cache-resident.
inline constexpr unsigned DefaultBatchWidth = 16;

/// \returns the worker count \p Cfg resolves to: NumThreads, with 0
/// mapped to std::thread::hardware_concurrency() (at least 1).
unsigned resolvedNumThreads(const CheckerConfig &Cfg);

/// The checker's verdict.
struct CheckResult {
  bool Ok = false;        ///< no violation found
  bool Exhausted = false; ///< hit MaxStates: Ok means "up to the budget"
  std::optional<Counterexample> Cex;
  uint64_t StatesExplored = 0;
  uint64_t StatesDeduped = 0;
  uint64_t RandomRunsUsed = 0;
  unsigned WorkersUsed = 1; ///< resolved worker count of this run
  uint64_t Steals = 0;      ///< work-stealing operations (0 sequentially)
  /// Parallel runs: states explored per worker (the seeding pass counts
  /// toward worker 0). Empty for sequential runs.
  std::vector<uint64_t> PerWorkerStates;
  /// Fingerprint collisions detected by the audit (0 unless
  /// AuditFingerprints; always 0 in Exact mode).
  uint64_t FingerprintCollisions = 0;
  /// Bytes of visited-set memory owned by the in-RAM tier at the end of
  /// the run — key-arena chunk capacity, slot arrays' key bytes (8 per
  /// fingerprint), and the audit side-table — summed across search
  /// phases: the bench's RAM bytes/state numerator (add SpillBytes for
  /// the end-to-end figure). Excludes hash-table bucket overhead, which
  /// is proportional for both modes. Eviction (VisitedStore::Spill)
  /// shrinks it.
  uint64_t VisitedBytes = 0;
  /// Spill-tier observability (VisitedStore::Spill; all zero otherwise,
  /// see docs/SPILL.md). Fingerprints evicted to disk; live bytes in the
  /// on-disk runs; shard run-merge operations; probes the per-shard
  /// filter passed that the runs refuted (the filter's false-positive
  /// cost — one wasted binary search each, never a wrong answer).
  uint64_t SpilledStates = 0;
  uint64_t SpillBytes = 0;
  uint64_t RunMerges = 0;
  uint64_t FilterFalseHits = 0;
  /// Store == Memory with a nonzero VisitedBudgetBytes only: the search
  /// stopped because the in-RAM tier crossed the budget (Exhausted is
  /// also set — the verdict means "Ok up to the budget").
  bool BudgetAborted = false;
  /// Store == Spill only: the spill directory could not be created or a
  /// run write failed mid-stream, so some or all of the search ran
  /// purely in RAM (sound — nothing was lost; the budget stops evicting
  /// and is no longer enforced).
  bool SpillFallback = false;
  /// POR observability (PorMode::Ample; all zero otherwise). States with
  /// two or more ready contexts expanded through a singleton ample set /
  /// expanded in full (no independent candidate, or the cycle proviso
  /// fired) / transitions skipped by the sequential engine's sleep sets.
  uint64_t AmpleStates = 0;
  uint64_t FullExpansions = 0;
  uint64_t SleepSkips = 0;
  /// Symmetry observability (SymmetryMode::Orbit; all zero otherwise).
  /// Thread orbits the inference proved for this candidate (0 = the
  /// inference did not run; numThreads = it ran but refused everything);
  /// visited-table probes whose canonical key came from a non-identity
  /// automorphism; and the per-candidate setup cost in seconds
  /// (inference plus permutation-table compilation — probes themselves
  /// are not timed).
  unsigned SymmetryOrbits = 0;
  uint64_t CanonHits = 0;
  double CanonTime = 0;
  /// Analysis-tuning observability, stamped from the Machine (zero when
  /// the Machine carries no analysis facts). Bits the packed visited-key
  /// layout sheds per state; cross-thread step pairs the protectedBy
  /// channel newly classifies independent; states whose value escaped its
  /// proven interval at encode time (an analysis bug indicator — the
  /// state fell back to the raw key, costing memory, never soundness).
  unsigned TightenedBits = 0;
  uint64_t LockIndepPairs = 0;
  uint64_t PackEscapes = 0;
  /// Heap-partition observability, stamped from the Machine (zero when
  /// no HeapPartition tuning applied): allocation sites splitting the
  /// heap footprint bits, and cross-thread step pairs the split newly
  /// classifies independent.
  unsigned ShapeSites = 0;
  uint64_t SiteIndepPairs = 0;
};

/// Model-checks one candidate (a Machine is a program plus a hole
/// assignment).
CheckResult checkCandidate(const exec::Machine &M,
                           const CheckerConfig &Cfg = CheckerConfig());

} // namespace verify
} // namespace psketch

#endif // PSKETCH_VERIFY_MODELCHECKER_H
