//===- verify/ModelChecker.h - Explicit-state model checking ----*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification procedure of the CEGIS loop: an explicit-state model
/// checker over all thread interleavings of one candidate, standing in for
/// the paper's use of SPIN [13]. It checks the same properties PSKETCH
/// delegates to its verifier: programmer assertions, implicit memory
/// safety, bounded termination (loop-bound asserts injected by the
/// flattener), and deadlock freedom; and it produces exactly what the
/// synthesizer needs — a bounded counterexample trace.
///
/// Two standard engineering devices (both ablatable, see DESIGN.md):
///  * a random-schedule falsifier runs first, because most bad candidates
///    die on one of a handful of cheap random schedules;
///  * a partial-order reduction executes steps that touch only
///    thread-local state (or whose guard is dynamically false) without a
///    scheduling choice — they commute with every other thread.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_VERIFY_MODELCHECKER_H
#define PSKETCH_VERIFY_MODELCHECKER_H

#include "exec/Machine.h"
#include "verify/Trace.h"

#include <cstdint>
#include <optional>

namespace psketch {
namespace verify {

/// Exhaustive-search order. DFS is cheaper on memory; BFS returns
/// shortest counterexamples, which can be stronger observations for the
/// synthesizer (measured by bench_cex_ablation).
enum class SearchOrder : uint8_t { Dfs, Bfs };

/// Tuning knobs for the checker.
struct CheckerConfig {
  bool UseRandomFalsifier = true; ///< try random schedules before DFS
  unsigned RandomRuns = 64;       ///< how many random schedules
  bool UsePOR = true;             ///< run local steps without branching
  SearchOrder Order = SearchOrder::Dfs;
  uint64_t MaxStates = 4000000;   ///< exploration safety net
  uint64_t Seed = 1;              ///< random falsifier seed
};

/// The checker's verdict.
struct CheckResult {
  bool Ok = false;        ///< no violation found
  bool Exhausted = false; ///< hit MaxStates: Ok means "up to the budget"
  std::optional<Counterexample> Cex;
  uint64_t StatesExplored = 0;
  uint64_t StatesDeduped = 0;
  uint64_t RandomRunsUsed = 0;
};

/// Model-checks one candidate (a Machine is a program plus a hole
/// assignment).
CheckResult checkCandidate(const exec::Machine &M,
                           const CheckerConfig &Cfg = CheckerConfig());

} // namespace verify
} // namespace psketch

#endif // PSKETCH_VERIFY_MODELCHECKER_H
