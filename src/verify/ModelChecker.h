//===- verify/ModelChecker.h - Explicit-state model checking ----*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification procedure of the CEGIS loop: an explicit-state model
/// checker over all thread interleavings of one candidate, standing in for
/// the paper's use of SPIN [13]. It checks the same properties PSKETCH
/// delegates to its verifier: programmer assertions, implicit memory
/// safety, bounded termination (loop-bound asserts injected by the
/// flattener), and deadlock freedom; and it produces exactly what the
/// synthesizer needs — a bounded counterexample trace.
///
/// Two standard engineering devices (both ablatable, see DESIGN.md):
///  * a random-schedule falsifier runs first, because most bad candidates
///    die on one of a handful of cheap random schedules;
///  * a partial-order reduction executes steps that touch only
///    thread-local state (or whose guard is dynamically false) without a
///    scheduling choice — they commute with every other thread.
///
/// The checker is optionally multi-threaded (CheckerConfig::NumThreads):
/// per-worker DFS over disjoint frontier subtrees with work-stealing, a
/// sharded concurrent seen-state table, and cooperative cancellation on
/// the first violation (docs/PARALLEL.md describes the design).
///
/// Reproducibility contract
/// ------------------------
///  * NumThreads == 1 is bit-exact legacy behaviour: the single-threaded
///    search of the original checker, with ONE falsifier stream seeded
///    directly from CheckerConfig::Seed. Verdict, counterexample, and
///    state counts depend only on the candidate and the config.
///  * NumThreads >= 2 (or 0 = hardware concurrency): verdict and
///    counterexample depend only on (Seed, RandomRuns, Order, UsePOR,
///    DeterministicCex) — NOT on the worker count or on OS scheduling.
///    Falsifier run r always draws from an independent SplitMix64 stream
///    derived from (Seed, r), so which worker executes which run is
///    irrelevant; the reported counterexample is the one with the
///    smallest failing run index. A violation found by the exhaustive
///    phase is (under DeterministicCex, the default) re-derived by a
///    deterministic sequential search, yielding the canonical minimal
///    trace — the same trace for 2 and for 64 workers.
///    Exception: runs that hit MaxStates (Result.Exhausted) explored a
///    timing-dependent subset of the space, so their "Ok up to the
///    budget" verdict carries the same caveat the budget itself does.
///    StatesExplored / StatesDeduped / Steals / PerWorkerStates are
///    scheduling-dependent statistics, never part of the verdict.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_VERIFY_MODELCHECKER_H
#define PSKETCH_VERIFY_MODELCHECKER_H

#include "exec/Machine.h"
#include "verify/Trace.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace psketch {
namespace verify {

/// Exhaustive-search order. DFS is cheaper on memory; BFS returns
/// shortest counterexamples, which can be stronger observations for the
/// synthesizer (measured by bench_cex_ablation).
enum class SearchOrder : uint8_t { Dfs, Bfs };

/// Tuning knobs for the checker.
struct CheckerConfig {
  bool UseRandomFalsifier = true; ///< try random schedules before DFS
  unsigned RandomRuns = 64;       ///< how many random schedules
  bool UsePOR = true;             ///< run local steps without branching
  SearchOrder Order = SearchOrder::Dfs;
  uint64_t MaxStates = 4000000;   ///< exploration safety net
  uint64_t Seed = 1;              ///< random falsifier seed
  /// Checker workers: 1 = exact legacy single-threaded behaviour,
  /// 0 = hardware concurrency, N = that many workers.
  unsigned NumThreads = 1;
  /// When true (default) a violation found by the parallel exhaustive
  /// phase is re-derived by a deterministic sequential search so the
  /// reported counterexample is the canonical minimal trace regardless
  /// of worker timing (see the reproducibility contract above). When
  /// false the canonical-minimal trace *among those found before
  /// cancellation* is reported — faster on failing candidates, but the
  /// trace may vary across runs. Ignored when NumThreads == 1.
  bool DeterministicCex = true;
};

/// \returns the worker count \p Cfg resolves to: NumThreads, with 0
/// mapped to std::thread::hardware_concurrency() (at least 1).
unsigned resolvedNumThreads(const CheckerConfig &Cfg);

/// The checker's verdict.
struct CheckResult {
  bool Ok = false;        ///< no violation found
  bool Exhausted = false; ///< hit MaxStates: Ok means "up to the budget"
  std::optional<Counterexample> Cex;
  uint64_t StatesExplored = 0;
  uint64_t StatesDeduped = 0;
  uint64_t RandomRunsUsed = 0;
  unsigned WorkersUsed = 1; ///< resolved worker count of this run
  uint64_t Steals = 0;      ///< work-stealing operations (0 sequentially)
  /// Parallel runs: states explored per worker (the seeding pass counts
  /// toward worker 0). Empty for sequential runs.
  std::vector<uint64_t> PerWorkerStates;
};

/// Model-checks one candidate (a Machine is a program plus a hole
/// assignment).
CheckResult checkCandidate(const exec::Machine &M,
                           const CheckerConfig &Cfg = CheckerConfig());

} // namespace verify
} // namespace psketch

#endif // PSKETCH_VERIFY_MODELCHECKER_H
