//===- verify/SpillStore.h - Disk-backed fingerprint tier -------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header: the on-disk tier behind CheckerConfig::Store ==
/// VisitedStore::Spill (docs/SPILL.md). A SpillStore owns one search's
/// spilled visited fingerprints as 64 shards of log-structured, sorted,
/// append-only runs of 8-byte fingerprints, mmap'd read-only
/// (support/Mmap.h), each shard fronted by an in-memory tag filter with
/// CAS-word insert. The shard index is Fp & 63 — the SAME function the
/// parallel engine's ShardedVisited stripes on, so in the parallel
/// checker every operation on spill shard k happens under visited shard
/// k's mutex and the store needs no locking of its own; the sequential
/// checker is single-threaded and fans one cell out across all 64
/// shards, which keeps runs small and merges bounded either way.
///
/// Soundness shape (docs/SPILL.md extends the docs/PARALLEL.md §5
/// argument): only fingerprints of FULLY-EXPLORED states (stored sleep
/// mask 0) are ever spilled, so a disk hit is always a sound Prune; the
/// filter has NO false negatives over the spilled set (a spilled state
/// can never be silently re-explored forever — dedup completeness and
/// hence termination are preserved), and a filter false positive only
/// costs one wasted run probe, counted in filterFalseHits(). Spilled
/// entries are fingerprint-grade even when the in-memory tier is Exact:
/// dropping the key bytes is precisely the one-sided-error trade of
/// VisitedMode::Fingerprint, applied to the cold set only.
///
/// I/O failure is never fatal: any mkdir/write failure marks the store
/// failed, discards the partial run, and the visited tier simply stops
/// evicting (everything stays in RAM — the Memory-mode behaviour). The
/// destructor removes the store's own unique spill subdirectory.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_VERIFY_SPILLSTORE_H
#define PSKETCH_VERIFY_SPILLSTORE_H

#include "support/Mmap.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace psketch {
namespace verify {
namespace detail {

/// Compact membership filter over one spill shard's fingerprints: an
/// open-addressing array of 64-bit words, each holding four 16-bit tags,
/// inserted by CAS on the whole word — probes are wait-free loads and
/// inserts are lock-free, so the common "is this fingerprint spilled?"
/// path costs one or two cache lines and no lock beyond the visited
/// shard's own. Tags are bits 48..63 of the fingerprint (0 remapped to
/// 1 so 0 can mean "empty slot"); the home word comes from bits 6..
/// (bits 0..5 are constant within a shard — they picked it). A probe
/// walks words from the home word and stops at the first word with an
/// empty slot, exactly mirroring the insert walk, so every inserted
/// fingerprint is always found (no false negatives); two fingerprints
/// sharing a probe chain and a tag alias (p ~ chain length / 2^16) make
/// a false positive, answered definitively by the runs.
///
/// The filter cannot rehash from tags alone (16 bits don't recover the
/// home word of a larger table), so growth rebuilds from the shard's
/// runs — the durable copy of exactly the spilled set — via reset() +
/// insert() replay at spill time, under the shard's lock.
class TagFilter {
public:
  /// Discards everything and sizes the table for \p ExpectedEntries at
  /// a comfortable load factor.
  void reset(size_t ExpectedEntries) {
    size_t Want = 8;
    while (Want * 4 * 7 < ExpectedEntries * 10) // keep load under 70%
      Want *= 2;
    Words = std::make_unique<std::atomic<uint64_t>[]>(Want);
    for (size_t I = 0; I < Want; ++I)
      Words[I].store(0, std::memory_order_relaxed);
    NumWords = Want;
    Entries = 0;
  }

  /// True when the table would exceed its load factor after \p More
  /// additional entries (the caller then rebuilds from the runs).
  bool needsGrow(size_t More) const {
    return NumWords == 0 || (Entries + More) * 10 > NumWords * 4 * 7;
  }

  /// Inserts \p Fp's tag (idempotent). The caller guarantees capacity
  /// via needsGrow()/reset(); lock-free against concurrent probes.
  void insert(uint64_t Fp) {
    uint64_t Tag = tagOf(Fp);
    size_t Mask = NumWords - 1;
    for (size_t I = homeWord(Fp) & Mask;;) {
      uint64_t Cur = Words[I].load(std::memory_order_relaxed);
      int Free = -1;
      for (int S = 0; S < 4; ++S) {
        uint64_t T = (Cur >> (S * 16)) & 0xffff;
        if (T == Tag)
          return; // already present
        if (T == 0 && Free < 0)
          Free = S;
      }
      if (Free < 0) {
        I = (I + 1) & Mask;
        continue;
      }
      uint64_t New = Cur | (Tag << (Free * 16));
      if (Words[I].compare_exchange_weak(Cur, New,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
        ++Entries;
        return;
      }
      // CAS lost: re-examine the same word (the tag may have just been
      // inserted by the winner, or a different slot filled).
    }
  }

  /// May-contain probe: false is definitive (no false negatives), true
  /// means "check the runs". Wait-free.
  bool mayContain(uint64_t Fp) const {
    if (NumWords == 0)
      return false;
    uint64_t Tag = tagOf(Fp);
    size_t Mask = NumWords - 1;
    for (size_t I = homeWord(Fp) & Mask;; I = (I + 1) & Mask) {
      uint64_t W = Words[I].load(std::memory_order_acquire);
      bool HasEmpty = false;
      for (int S = 0; S < 4; ++S) {
        uint64_t T = (W >> (S * 16)) & 0xffff;
        if (T == Tag)
          return true;
        if (T == 0)
          HasEmpty = true;
      }
      if (HasEmpty)
        return false; // the insert walk would have stopped here too
    }
  }

  /// Pulls \p Fp's home word toward the cache (the batched probe's
  /// first prefetch sweep).
  void prefetch(uint64_t Fp) const {
    if (NumWords)
      __builtin_prefetch(&Words[homeWord(Fp) & (NumWords - 1)]);
  }

  size_t bytes() const { return NumWords * sizeof(uint64_t); }
  size_t entries() const { return Entries; }

private:
  static uint64_t tagOf(uint64_t Fp) {
    uint64_t Tag = (Fp >> 48) & 0xffff;
    return Tag ? Tag : 1;
  }
  /// Bits 0..5 selected the shard; the home word must not reuse them.
  static size_t homeWord(uint64_t Fp) { return Fp >> 6; }

  std::unique_ptr<std::atomic<uint64_t>[]> Words; ///< 4 tags per word
  size_t NumWords = 0;                            ///< power of two
  size_t Entries = 0;
};

/// The disk tier: 64 shards of sorted fingerprint runs plus their
/// filters. See the file comment for the locking and soundness story.
class SpillStore {
public:
  static constexpr unsigned NumShards = 64;
  /// Runs per shard before they are merged into one (bounds probe read
  /// amplification at log2-of-run-size * MaxRunsPerShard).
  static constexpr unsigned MaxRunsPerShard = 8;

  /// Creates a unique spill-<pid>-<seq> subdirectory under \p BaseDir
  /// (empty = the system temp directory). Failure to create it marks
  /// the store failed — callers then run pure in-memory.
  explicit SpillStore(const std::string &BaseDir);

  /// Unmaps the runs and removes the store's own subdirectory.
  ~SpillStore();

  SpillStore(const SpillStore &) = delete;
  SpillStore &operator=(const SpillStore &) = delete;

  /// False after any I/O failure: no further spills will be accepted
  /// (the in-memory tier keeps everything), already-written runs keep
  /// answering probes.
  bool ok() const { return !Failed.load(std::memory_order_relaxed); }

  /// Appends one sorted run of \p N fingerprints (sorted ascending,
  /// duplicate-free — spillNow guarantees both) to \p Shard, updates
  /// the filter, and merges the shard's runs when MaxRunsPerShard is
  /// reached. \returns false on I/O failure (store marked failed, no
  /// partial run left behind; the caller keeps the fingerprints in
  /// memory). Caller must hold the visited shard's lock.
  bool spill(unsigned Shard, const uint64_t *Fps, size_t N);

  /// Membership probe: filter first (a definitive no), then the runs
  /// newest-first. A filter yes the runs refute counts one false hit.
  bool contains(unsigned Shard, uint64_t Fp) const;

  /// Batched probe over \p N fingerprints of one shard, sorted
  /// ascending: every run is swept once front-to-back (each lane's
  /// lower_bound starts where the previous lane's ended) with the next
  /// probe page prefetched, instead of N independent cold binary
  /// searches. Hit[I] = contains(Shard, SortedFps[I]).
  void containsBatch(unsigned Shard, const uint64_t *SortedFps, size_t N,
                     uint8_t *Hit) const;

  uint64_t spilledStates() const {
    return SpilledStates.load(std::memory_order_relaxed);
  }
  uint64_t spillBytes() const {
    return SpillBytes.load(std::memory_order_relaxed);
  }
  uint64_t runMerges() const {
    return RunMerges.load(std::memory_order_relaxed);
  }
  uint64_t filterFalseHits() const {
    return FilterFalseHits.load(std::memory_order_relaxed);
  }
  /// RAM owned by the filters (part of the in-memory budget story).
  uint64_t filterBytes() const;

  const std::string &dir() const { return Dir; }

  /// Test hook (crash/ENOSPC robustness coverage): writes fail once the
  /// store has written this many bytes in total. SIZE_MAX = off.
  static size_t TestFailAfterBytes;

private:
  struct Run {
    MappedFile Map;
    std::string Path;
    size_t count() const { return Map.size() / sizeof(uint64_t); }
    const uint64_t *begin() const {
      return static_cast<const uint64_t *>(Map.data());
    }
  };
  struct ShardState {
    TagFilter Filter;
    std::vector<Run> Runs;
    unsigned NextSeq = 0;
  };

  /// Writes \p N fingerprints to a fresh run file and maps it. On
  /// failure the partial file is unlinked and the store marked failed.
  bool writeRun(unsigned Shard, const uint64_t *Fps, size_t N, Run &Out);

  /// Streaming k-way merge of every run of \p Shard into one
  /// (duplicate-eliminating); on failure the old runs stay in place.
  bool mergeShard(unsigned Shard);

  /// Rebuilds the shard's filter from its runs plus \p Extra pending
  /// fingerprints (growth path; see TagFilter).
  void rebuildFilter(ShardState &S, const uint64_t *Extra, size_t N);

  std::string Dir;   ///< the unique subdirectory (empty when creation failed)
  ShardState Shards[NumShards];
  std::atomic<bool> Failed{false};
  std::atomic<uint64_t> SpilledStates{0};
  std::atomic<uint64_t> SpillBytes{0};
  std::atomic<uint64_t> RunMerges{0};
  mutable std::atomic<uint64_t> FilterFalseHits{0};
  mutable std::atomic<uint64_t> BytesWritten{0}; ///< test-hook meter
};

} // namespace detail
} // namespace verify
} // namespace psketch

#endif // PSKETCH_VERIFY_SPILLSTORE_H
