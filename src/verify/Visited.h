//===- verify/Visited.h - Exact and fingerprint visited tables --*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header: the seen-state tables behind CheckerConfig::Visited,
/// shared by the sequential checker (one VisitedTable) and the parallel
/// work-stealing engine (a 64-shard ShardedVisited). Both wrap the same
/// VisitedCell so Exact and Fingerprint dedup — including the optional
/// collision audit — behave identically in either engine.
///
/// Exact mode owns the full scheduler-relevant key (Machine::encodeState,
/// 8 bytes per state word). Fingerprint mode stores only the 8-byte hash
/// of that key; the audit (CheckerConfig::AuditFingerprints) additionally
/// keeps a bounded side-table of full keys per fingerprint so a hash hit
/// can be distinguished from a genuine revisit: a mismatch increments the
/// collision counter and the state is explored anyway (Exact fallback).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_VERIFY_VISITED_H
#define PSKETCH_VERIFY_VISITED_H

#include "exec/Machine.h"
#include "support/Hash.h"
#include "verify/ModelChecker.h"

#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace psketch {
namespace verify {
namespace detail {

/// Injectable fingerprint function over a state's scheduler-relevant
/// words. Production code uses hashWords; the forced-collision unit test
/// substitutes a degenerate hash.
using StateHashFn = uint64_t (*)(const int64_t *Words, size_t NumWords);

/// One dedup domain: the whole table sequentially, one shard in the
/// parallel engine. Not synchronized — callers lock around it.
class VisitedCell {
public:
  /// \returns true when the state was newly inserted (caller explores
  /// it), false on a revisit. \p Fp is the state's fingerprint; \p KeyFn
  /// lazily materializes the exact key (only called when this mode needs
  /// the bytes, so Fingerprint mode without audit never allocates).
  template <typename KeyFnT>
  bool insert(VisitedMode Mode, bool Audit, uint64_t AuditBudget,
              uint64_t Fp, KeyFnT &&KeyFn) {
    if (Mode == VisitedMode::Exact) {
      auto [It, New] = Exact.insert(KeyFn());
      if (New)
        KeyBytes += It->size();
      return New;
    }
    if (!Fps.insert(Fp).second) {
      if (!Audit)
        return false; // unaudited hash hit: assume a revisit
      auto It = AuditKeys.find(Fp);
      if (It == AuditKeys.end())
        return false; // over budget when first seen: cannot distinguish
      std::string Key = KeyFn();
      for (const std::string &Seen : It->second)
        if (Seen == Key)
          return false; // genuine revisit
      // Same fingerprint, different bytes: a real collision. Record it
      // and fall back to Exact behaviour — explore the state.
      ++Collisions;
      KeyBytes += Key.size();
      It->second.push_back(std::move(Key));
      return true;
    }
    KeyBytes += sizeof(uint64_t);
    if (Audit && AuditEntries < AuditBudget) {
      std::string Key = KeyFn();
      KeyBytes += Key.size();
      AuditKeys[Fp].push_back(std::move(Key));
      ++AuditEntries;
    }
    return true;
  }

  uint64_t collisions() const { return Collisions; }
  uint64_t keyBytes() const { return KeyBytes; }

private:
  std::unordered_set<std::string> Exact;
  std::unordered_set<uint64_t> Fps;
  std::unordered_map<uint64_t, std::vector<std::string>> AuditKeys;
  uint64_t AuditEntries = 0;
  uint64_t Collisions = 0;
  uint64_t KeyBytes = 0;
};

/// The sequential engine's visited table.
class VisitedTable {
public:
  explicit VisitedTable(const CheckerConfig &Cfg,
                        StateHashFn Hash = &hashWords)
      : Mode(Cfg.Visited), Audit(Cfg.AuditFingerprints),
        AuditBudget(Cfg.AuditBudget), Hash(Hash) {}

  /// \returns true when \p S was newly inserted.
  bool insert(const exec::Machine &M, const exec::State &S) {
    uint64_t Fp = Mode == VisitedMode::Fingerprint
                      ? Hash(S.words(), M.schedWords())
                      : 0;
    return Cell.insert(Mode, Audit, AuditBudget, Fp,
                       [&] { return M.encodeState(S); });
  }

  uint64_t collisions() const { return Cell.collisions(); }
  uint64_t keyBytes() const { return Cell.keyBytes(); }

private:
  VisitedMode Mode;
  bool Audit;
  uint64_t AuditBudget;
  StateHashFn Hash;
  VisitedCell Cell;
};

/// Mutex-striped seen-state table for the parallel engine. The stripe
/// count only needs to beat the worker count comfortably; 64 keeps
/// contention negligible without wasting cache. The fingerprint doubles
/// as the shard index (it is computed in both modes — in Exact mode it
/// replaces the std::hash the shard selector used to need).
class ShardedVisited {
public:
  explicit ShardedVisited(const CheckerConfig &Cfg,
                          StateHashFn Hash = &hashWords)
      : Mode(Cfg.Visited), Audit(Cfg.AuditFingerprints),
        AuditBudget(Cfg.AuditBudget / NumShards + 1), Hash(Hash) {}

  /// \returns true when \p S was newly inserted. Check-and-insert is
  /// atomic per shard.
  bool insert(const exec::Machine &M, const exec::State &S) {
    uint64_t Fp = Hash(S.words(), M.schedWords());
    ShardT &Shard = Shards[Fp & (NumShards - 1)];
    std::lock_guard<std::mutex> Lock(Shard.Mu);
    return Shard.Cell.insert(Mode, Audit, AuditBudget, Fp,
                             [&] { return M.encodeState(S); });
  }

  uint64_t collisions() const {
    uint64_t Total = 0;
    for (const ShardT &Shard : Shards) {
      std::lock_guard<std::mutex> Lock(Shard.Mu);
      Total += Shard.Cell.collisions();
    }
    return Total;
  }
  uint64_t keyBytes() const {
    uint64_t Total = 0;
    for (const ShardT &Shard : Shards) {
      std::lock_guard<std::mutex> Lock(Shard.Mu);
      Total += Shard.Cell.keyBytes();
    }
    return Total;
  }

private:
  static constexpr size_t NumShards = 64;
  struct alignas(64) ShardT {
    mutable std::mutex Mu;
    VisitedCell Cell;
  };
  VisitedMode Mode;
  bool Audit;
  uint64_t AuditBudget;
  StateHashFn Hash;
  ShardT Shards[NumShards];
};

} // namespace detail
} // namespace verify
} // namespace psketch

#endif // PSKETCH_VERIFY_VISITED_H
