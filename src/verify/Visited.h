//===- verify/Visited.h - Exact and fingerprint visited tables --*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header: the seen-state tables behind CheckerConfig::Visited,
/// shared by the sequential checker (one VisitedTable) and the parallel
/// work-stealing engine (a 64-shard ShardedVisited). Both wrap the same
/// VisitedCell so Exact and Fingerprint dedup — including the optional
/// collision audit — behave identically in either engine.
///
/// Exact mode owns the full scheduler-relevant key (Machine::encodeState,
/// 8 bytes per state word), stored in a FlatExactTable: an
/// open-addressing slot array indexed by the state fingerprint plus a
/// chunked arena of key bytes. Exactness never rests on the fingerprint
/// (a slot hit is always confirmed by memcmp; a mismatch walks on) — the
/// fingerprint only places the entry, which is what lets the batched
/// probes software-prefetch the slot line and the key bytes across a
/// whole batch of lanes (docs/BATCHING.md). Fingerprint mode stores only
/// the 8-byte hash of the key; the audit
/// (CheckerConfig::AuditFingerprints) additionally keeps a bounded
/// side-table of full keys per fingerprint so a hash hit can be
/// distinguished from a genuine revisit: a mismatch increments the
/// collision counter and the state is explored anyway (Exact fallback).
///
/// Every entry also carries the sleep-set mask the state was (last)
/// entered with, for the sequential ample engine (docs/POR.md): plain
/// dedup is the mask-0 special case, so the pre-POR engines are
/// unchanged. A revisit with sleep set T of a state stored with mask B
/// is covered only when B is a subset of T (the prior visit explored
/// every transition this one would); otherwise the revisit must explore
/// the woken transitions B \ T and the stored mask shrinks to the
/// intersection — strictly, so re-expansion terminates.
///
/// Symmetry (CheckerConfig::Symmetry, docs/SYMMETRY.md): when a
/// Canonicalizer is attached, both tables key on the canonical image of
/// the state — computed here, *before* any fingerprinting, sharding, or
/// sleep-mask comparison, so all of those operate in canonical
/// coordinates. Sleep masks are per-thread bitsets in raw coordinates;
/// the chosen automorphism's CtxMap translates them into canonical
/// coordinates on the way in and back out on Wake, which is what makes
/// mask subset checks across symmetric revisits meaningful.
///
/// Spill tier (CheckerConfig::Store == VisitedStore::Spill,
/// docs/SPILL.md): each cell can be bounded by a byte budget and backed
/// by a SpillStore. Crossing the budget evicts the fingerprints of
/// mask-0 entries — whose revisits the in-memory table would always
/// Prune ((0 & ~Sleep) == 0 for every Sleep), so a disk hit reproduces
/// the in-memory decision exactly — to sorted on-disk runs; entries
/// carrying a live sleep mask stay resident. Probes consult the disk
/// tier only on an in-memory miss, BEFORE inserting, so a spilled
/// subtree is never re-explored and StatesExplored parity with Memory
/// mode is preserved. Batched probes pre-compute per-lane disk hints in
/// one sorted sweep (spillHints); an eviction epoch invalidates hints
/// that predate a mid-batch spill. Without a budget or store this is
/// all compiled down to a null-pointer check per insert.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_VERIFY_VISITED_H
#define PSKETCH_VERIFY_VISITED_H

#include "exec/Machine.h"
#include "support/Hash.h"
#include "verify/Canon.h"
#include "verify/ModelChecker.h"
#include "verify/SpillStore.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>


namespace psketch {
namespace verify {
namespace detail {

/// Injectable fingerprint function over a state's scheduler-relevant
/// words. Production code uses hashWords; the forced-collision unit test
/// substitutes a degenerate hash.
using StateHashFn = uint64_t (*)(const int64_t *Words, size_t NumWords);

/// What a sleep-mask-aware insert decided (see the file comment).
enum class InsertOutcome : uint8_t {
  Fresh, ///< newly inserted: explore the state
  Prune, ///< revisit, prior visit covers this one: skip
  Wake,  ///< revisit, but some previously-slept transitions must now run
};

/// Open-addressing exact-key store: the Exact-mode backing of
/// VisitedCell. The slot array holds (fingerprint, entry index) pairs
/// placed by linear probing on the fingerprint; the key bytes live in
/// chunked arenas indexed by entry at a fixed stride (the first key's
/// length — one machine, one encoding), so keys never move and inserts
/// never allocate per key. A probe touches one slot cache line plus, on
/// a fingerprint match, the key bytes — two dependent loads the batched
/// probe sweeps expose to software prefetch (VisitedTable::
/// insertMaskWordsBatch), overlapping across lanes the DRAM latency a
/// scalar probe chain serializes. A fingerprint match is always
/// confirmed by memcmp and a mismatch walks on, so dedup stays exact
/// under any hash, including the test suite's forced-collision one.
///
/// Keys of any other length — a packed layout's out-of-range escapes
/// render RawBytes+1 bytes where packed keys render KeyBytes
/// (exec/Machine.h) — land in a side map with plain string equality:
/// different lengths can never compare equal, so splitting by length
/// preserves exact dedup, and escapes are rare enough (PackEscapes) that
/// the map's extra cost never shows.
class FlatExactTable {
public:
  static constexpr uint32_t Absent = ~0u;

  /// Check-and-insert. \returns the entry's mask slot and whether the
  /// key was freshly inserted; a fresh entry's mask starts as \p Mask0.
  /// The pointer is valid until the next insert.
  std::pair<uint64_t *, bool> findOrInsert(uint64_t Fp, std::string_view Key,
                                           uint64_t Mask0) {
    if (Slots.empty())
      init(Key.size());
    if (Key.size() != KeyLen) {
      auto [It, New] = Odd.try_emplace(std::string(Key), Mask0);
      if (New)
        OddBytes += It->first.size() + sizeof(std::string) + sizeof(uint64_t);
      return {&It->second, New};
    }
    if ((Count + 1) * 10 > Slots.size() * 7)
      grow();
    size_t M = Slots.size() - 1;
    for (size_t I = Fp & M;; I = (I + 1) & M) {
      Slot &S = Slots[I];
      if (S.Idx == Absent) {
        assert(Count < Absent && "flat table full");
        S.Fp = Fp;
        S.Idx = static_cast<uint32_t>(Count);
        appendKey(Key);
        Masks.push_back(Mask0);
        ++Count;
        return {&Masks.back(), true};
      }
      if (S.Fp == Fp && std::memcmp(keyPtr(S.Idx), Key.data(), KeyLen) == 0)
        return {&Masks[S.Idx], false};
    }
  }

  /// True when \p Key is present (no insertion).
  bool find(uint64_t Fp, std::string_view Key) const {
    if (Slots.empty())
      return false;
    if (Key.size() != KeyLen)
      return Odd.count(std::string(Key)) != 0;
    size_t M = Slots.size() - 1;
    for (size_t I = Fp & M;; I = (I + 1) & M) {
      const Slot &S = Slots[I];
      if (S.Idx == Absent)
        return false;
      if (S.Fp == Fp && std::memcmp(keyPtr(S.Idx), Key.data(), KeyLen) == 0)
        return true;
    }
  }

  /// Prefetch stage 1: pull in \p Fp's slot line. Address arithmetic
  /// only, so it is the first sweep of a batch.
  void prefetchSlot(uint64_t Fp) const {
    if (!Slots.empty())
      __builtin_prefetch(&Slots[Fp & (Slots.size() - 1)]);
  }

  /// Pipeline stage 2: walk the probe chain for \p Fp and return the
  /// key bytes a later findOrInsert would memcmp against, or null when
  /// the window holds no fingerprint match. The walk's slot reads and
  /// the volatile touches of the key's first and last lines are real
  /// (demand) loads on purpose: a multi-hundred-MiB arena on 4 KiB
  /// pages misses the TLB on essentially every probe, and hardware
  /// drops __builtin_prefetch requests whose translation misses —
  /// demand loads instead start the page walks, and independent lanes'
  /// touches overlap in the out-of-order window. Bounded and
  /// side-effect-free; chains longer than the window just lose the
  /// warm-up, and the later real probe decides everything.
  const char *touchKey(uint64_t Fp) const {
    if (Slots.empty())
      return nullptr;
    size_t M = Slots.size() - 1;
    size_t I = Fp & M;
    for (unsigned P = 0; P < 8; ++P, I = (I + 1) & M) {
      const Slot &S = Slots[I];
      if (S.Idx == Absent)
        return nullptr;
      if (S.Fp == Fp) {
        const char *K = keyPtr(S.Idx);
        (void)*static_cast<const volatile char *>(K);
        (void)*static_cast<const volatile char *>(K + (KeyLen - 1));
        return K;
      }
    }
    return nullptr;
  }

  /// Pipeline stage 3: prefetch the interior lines of a key returned
  /// by touchKey. Its pages are translated (or translating) after the
  /// stage-2 touches, so these prefetches survive, and the whole
  /// batch's key bytes stream at bandwidth instead of serializing
  /// inside per-lane memcmp miss trains.
  void prefetchKeyLines(const char *K) const {
    for (size_t Off = 64; Off + 64 < KeyLen; Off += 64)
      __builtin_prefetch(K + Off);
  }

  /// Bytes this table owns right now: the slot array, the key-arena
  /// chunks at their allocated (not just occupied) size, the mask array,
  /// and the odd-key side map. O(1) — it is the Exact-mode component of
  /// the in-RAM budget meter, consulted per insert.
  size_t ownedBytes() const {
    return Slots.size() * sizeof(Slot) +
           Arena.size() * std::max<size_t>(1, KeyLen << KeysPerChunkLog2) +
           Masks.size() * sizeof(uint64_t) + OddBytes;
  }

  /// Appends the fingerprint of every mask-0 entry to \p Out — the
  /// spill-eligible set: a mask-0 revisit always resolves to Prune, so
  /// a disk hit reproduces the in-memory decision exactly. Odd-length
  /// keys stay resident (they are rare packed-layout escapes). Does not
  /// modify the table: the caller commits via dropZeroMask() only after
  /// the spill succeeded, so an I/O failure loses nothing.
  void collectZeroMaskFps(std::vector<uint64_t> &Out) const {
    for (const Slot &S : Slots)
      if (S.Idx != Absent && Masks[S.Idx] == 0)
        Out.push_back(S.Fp);
  }

  /// Rebuilds the table retaining only entries with a nonzero stored
  /// mask (plus every odd-key entry) — the eviction commit paired with
  /// collectZeroMaskFps. Their key bytes are dropped: membership of the
  /// evicted set is answered by fingerprint from here on (docs/SPILL.md
  /// one-sided-error argument).
  void dropZeroMask() {
    if (Slots.empty())
      return;
    std::vector<Slot> OldSlots;
    OldSlots.swap(Slots);
    std::vector<std::unique_ptr<char[]>> OldArena;
    OldArena.swap(Arena);
    std::vector<uint64_t> OldMasks;
    OldMasks.swap(Masks);
    Count = 0;
    size_t Len = KeyLen;
    init(Len);
    for (const Slot &S : OldSlots) {
      if (S.Idx == Absent || OldMasks[S.Idx] == 0)
        continue;
      const char *K = OldArena[S.Idx >> KeysPerChunkLog2].get() +
                      (S.Idx & ((size_t(1) << KeysPerChunkLog2) - 1)) * Len;
      findOrInsert(S.Fp, std::string_view(K, Len), OldMasks[S.Idx]);
    }
  }

private:
  struct Slot {
    uint64_t Fp;
    uint32_t Idx; ///< arena entry, or Absent for an empty slot
    uint32_t Pad;
  };
  /// 8 Ki keys per arena chunk: large enough to amortize the chunk
  /// allocation, small enough that growth never copies key bytes.
  static constexpr size_t KeysPerChunkLog2 = 13;


  void init(size_t Len) {
    KeyLen = Len;
    Slots.assign(1024, Slot{0, Absent, 0});
  }

  void grow() {
    std::vector<Slot> Old(Slots.size() * 2, Slot{0, Absent, 0});
    Old.swap(Slots);
    size_t M = Slots.size() - 1;
    for (const Slot &S : Old) {
      if (S.Idx == Absent)
        continue;
      size_t I = S.Fp & M;
      while (Slots[I].Idx != Absent)
        I = (I + 1) & M;
      Slots[I] = S;
    }
  }

  const char *keyPtr(uint32_t Idx) const {
    return Arena[Idx >> KeysPerChunkLog2].get() +
           (Idx & ((size_t(1) << KeysPerChunkLog2) - 1)) * KeyLen;
  }

  void appendKey(std::string_view Key) {
    size_t Chunk = Count >> KeysPerChunkLog2;
    if (Chunk == Arena.size())
      Arena.push_back(std::make_unique<char[]>(
          std::max<size_t>(1, KeyLen << KeysPerChunkLog2)));
    std::memcpy(Arena[Chunk].get() +
                    (Count & ((size_t(1) << KeysPerChunkLog2) - 1)) * KeyLen,
                Key.data(), KeyLen);
  }

  std::vector<Slot> Slots; ///< power-of-two capacity
  std::vector<std::unique_ptr<char[]>> Arena;
  std::vector<uint64_t> Masks; ///< per entry: stored sleep mask
  std::unordered_map<std::string, uint64_t> Odd; ///< off-stride keys -> mask
  size_t Count = 0;
  size_t KeyLen = 0;
  size_t OddBytes = 0; ///< estimated bytes owned by Odd
};

/// One dedup domain: the whole table sequentially, one shard in the
/// parallel engine. Not synchronized — callers lock around it.
///
/// Key contract: \p Key must carry the exact key bytes whenever the
/// mode is Exact or the audit is on; a Fingerprint-mode call without
/// audit may pass an empty view (the bytes are never read), which is
/// what keeps that configuration allocation- and encoding-free.
class VisitedCell {
public:
  /// Disk-hint values for insertMask's trailing parameter: the batched
  /// pipeline pre-answers "is this fingerprint spilled?" for a whole
  /// batch in one sorted sweep (spillHints); HintUnknown makes the
  /// insert probe the disk itself (the scalar path).
  static constexpr uint8_t HintMiss = 0;
  static constexpr uint8_t HintHit = 1;
  static constexpr uint8_t HintUnknown = 2;

  /// Attaches the disk tier (\p S null = VisitedStore::Memory) and the
  /// in-RAM byte budget (0 = unlimited; an abort watermark without a
  /// store, the eviction watermark with one). Called once, before any
  /// insert.
  void configure(SpillStore *S, uint64_t BudgetBytes) {
    Spill = S;
    Budget = BudgetBytes;
  }

  /// Mask-aware check-and-insert. \p Sleep is the sleep mask the state
  /// is being entered with (0 when sleep sets are off); on Wake,
  /// \p WakeOut receives the transitions a prior visit slept through
  /// that this one must explore. \p Fp is the state's fingerprint: the
  /// Fingerprint-mode key, the Exact-mode placement hint, and the spill
  /// tier's key. The disk tier is consulted only on an in-memory miss,
  /// BEFORE inserting — a spilled subtree is never re-explored, so
  /// Memory and Spill runs explore the same states.
  InsertOutcome insertMask(VisitedMode Mode, bool Audit, uint64_t AuditBudget,
                           uint64_t Fp, uint64_t Sleep, uint64_t &WakeOut,
                           std::string_view Key,
                           uint8_t DiskHint = HintUnknown) {
    uint64_t *Slot = nullptr;
    if (Mode == VisitedMode::Exact) {
      // The extra find() is paid only once something has spilled: until
      // then diskHas() is false without touching the table.
      if (Spill && SpillEpoch != 0 && !Flat.find(Fp, Key) &&
          diskHas(Fp, DiskHint))
        return InsertOutcome::Prune;
      auto [MaskSlot, New] = Flat.findOrInsert(Fp, Key, Sleep);
      if (New) {
        maybeEnforceBudget();
        return InsertOutcome::Fresh;
      }
      Slot = MaskSlot;
    } else {
      auto It = Fps.find(Fp);
      if (It == Fps.end()) {
        if (diskHas(Fp, DiskHint))
          return InsertOutcome::Prune;
        It = Fps.emplace(Fp, Sleep).first;
        if (Audit && AuditEntries < AuditBudget) {
          AuditBytes += Key.size() + sizeof(std::string);
          AuditKeys[Fp].emplace_back(Key);
          ++AuditEntries;
        }
        maybeEnforceBudget();
        return InsertOutcome::Fresh;
      }
      // Fingerprint hit. When audited (and within budget at first sight)
      // compare exact bytes: a mismatch is a real collision — record it
      // and fall back to Exact behaviour, exploring the state. Colliding
      // states share one mask slot; mask decisions across a detected
      // collision inherit the same residual risk the audit already
      // counts.
      if (Audit) {
        auto AIt = AuditKeys.find(Fp);
        if (AIt != AuditKeys.end()) {
          bool Seen = false;
          for (const std::string &K : AIt->second)
            if (K == Key) {
              Seen = true;
              break;
            }
          if (!Seen) {
            ++Collisions;
            AuditBytes += Key.size() + sizeof(std::string);
            AIt->second.emplace_back(Key);
            return InsertOutcome::Fresh;
          }
        }
        // Over budget when first seen: indistinguishable from a revisit.
      }
      Slot = &It->second;
    }
    return resolveRevisit(*Slot, Sleep, WakeOut);
  }

  /// Plain check-and-insert (the mask-0 case). \returns true when the
  /// state was newly inserted (caller explores it), false on a revisit.
  bool insert(VisitedMode Mode, bool Audit, uint64_t AuditBudget, uint64_t Fp,
              std::string_view Key, uint8_t DiskHint = HintUnknown) {
    uint64_t Wake = 0;
    return insertMask(Mode, Audit, AuditBudget, Fp, /*Sleep=*/0, Wake, Key,
                      DiskHint) == InsertOutcome::Fresh;
  }

  /// Read-only membership probe (the parallel/BFS cycle proviso). In
  /// Fingerprint mode a collision can answer a false "yes", which only
  /// forces a sound full expansion — and so can a spilled-tier hit,
  /// for the same reason with the same consequence.
  bool contains(VisitedMode Mode, uint64_t Fp, std::string_view Key) const {
    if (Mode == VisitedMode::Exact)
      return Flat.find(Fp, Key) || diskHas(Fp, HintUnknown);
    return Fps.count(Fp) != 0 || diskHas(Fp, HintUnknown);
  }

  /// Batched disk pre-probe over \p Lanes fingerprints (the frontier
  /// pipeline's spill sweep): fills Hint[K] with HintHit/HintMiss and
  /// returns the eviction epoch the answers are valid for. A lane whose
  /// insert runs after a newer eviction must downgrade its hint to
  /// HintUnknown — the eviction may have just spilled a sibling lane's
  /// fingerprint. Pre-probing every lane is safe because hints are only
  /// consulted on an in-memory miss. All-HintMiss (trivially valid)
  /// when nothing has spilled yet. Lanes are sorted by (shard, value)
  /// so every on-disk run is swept once, monotonically.
  uint64_t spillHints(const uint64_t *Fp, unsigned Lanes,
                      uint8_t *Hint) const {
    if (!Spill || SpillEpoch == 0) {
      std::fill(Hint, Hint + Lanes, HintMiss);
      return SpillEpoch;
    }
    static thread_local std::vector<std::pair<uint64_t, unsigned>> Order;
    static thread_local std::vector<uint64_t> SortedFp;
    static thread_local std::vector<uint8_t> SortedHit;
    Order.clear();
    for (unsigned K = 0; K < Lanes; ++K)
      Order.emplace_back(Fp[K], K);
    std::sort(Order.begin(), Order.end(), [](const auto &A, const auto &B) {
      unsigned SA = A.first & (SpillStore::NumShards - 1);
      unsigned SB = B.first & (SpillStore::NumShards - 1);
      return SA != SB ? SA < SB : A.first < B.first;
    });
    SortedFp.resize(Lanes);
    SortedHit.resize(Lanes);
    for (unsigned K = 0; K < Lanes; ++K)
      SortedFp[K] = Order[K].first;
    for (unsigned Lo = 0; Lo < Lanes;) {
      unsigned Shard = SortedFp[Lo] & (SpillStore::NumShards - 1);
      unsigned Hi = Lo + 1;
      while (Hi < Lanes &&
             (SortedFp[Hi] & (SpillStore::NumShards - 1)) == Shard)
        ++Hi;
      Spill->containsBatch(Shard, SortedFp.data() + Lo, Hi - Lo,
                           SortedHit.data() + Lo);
      Lo = Hi;
    }
    for (unsigned K = 0; K < Lanes; ++K)
      Hint[Order[K].second] = SortedHit[K] ? HintHit : HintMiss;
    return SpillEpoch;
  }

  /// Monotone eviction counter validating spillHints results.
  uint64_t spillEpoch() const { return SpillEpoch; }

  /// True once a Memory-mode budget was crossed (the abort watermark;
  /// never set in Spill mode, where the budget evicts instead).
  bool overBudget() const { return OverBudget; }

  /// Exact-mode batched-probe pipeline stages (no-ops on an empty
  /// table; meaningless but harmless in Fingerprint mode, where callers
  /// skip them).
  void prefetchSlot(uint64_t Fp) const { Flat.prefetchSlot(Fp); }
  const char *touchKey(uint64_t Fp) const { return Flat.touchKey(Fp); }
  void prefetchKeyLines(const char *K) const { Flat.prefetchKeyLines(K); }

  uint64_t collisions() const { return Collisions; }

  /// Bytes the in-RAM tier owns right now — the exact table's
  /// slots/arena/masks, 8 per resident fingerprint, and the audit
  /// side-table. Computed (not cumulative), so eviction shrinks it;
  /// it is also the budget meter.
  uint64_t keyBytes() const {
    return Flat.ownedBytes() + Fps.size() * sizeof(uint64_t) + AuditBytes;
  }

private:
  /// The shared revisit tail: the prior visits explored everything
  /// outside the stored mask; covered iff that includes everything
  /// outside Sleep.
  static InsertOutcome resolveRevisit(uint64_t &Slot, uint64_t Sleep,
                                      uint64_t &WakeOut) {
    uint64_t Stored = Slot;
    if ((Stored & ~Sleep) == 0)
      return InsertOutcome::Prune;
    WakeOut = Stored & ~Sleep; // slept then, needed now
    Slot = Stored & Sleep;     // strictly shrinks: re-expansion terminates
    return InsertOutcome::Wake;
  }

  /// Is \p Fp in the disk tier? False before anything spilled; a valid
  /// batched hint answers without touching the store.
  bool diskHas(uint64_t Fp, uint8_t Hint) const {
    if (!Spill || SpillEpoch == 0)
      return false;
    if (Hint != HintUnknown)
      return Hint == HintHit;
    return Spill->contains(Fp & (SpillStore::NumShards - 1), Fp);
  }

  /// Budget watermark, consulted after every fresh insert. Memory mode:
  /// crossing it latches OverBudget (the engines abort like MaxStates).
  /// Spill mode: crossing it evicts. A failed store cannot accept
  /// evictions — everything stays in RAM (sound; surfaced as
  /// CheckResult::SpillFallback) and the budget is waived.
  void maybeEnforceBudget() {
    uint64_t Bytes;
    if (Budget == 0 || (Bytes = keyBytes()) <= Budget)
      return;
    if (!Spill) {
      OverBudget = true;
      return;
    }
    if (!Spill->ok() || Bytes < SpillRearmAt)
      return;
    spillNow();
    uint64_t After = keyBytes();
    // Hysteresis: when eviction freed little (mask-carrying entries
    // cannot spill), retry only after the tier has grown by a quarter
    // budget — never a full-table scan per insert.
    SpillRearmAt = After > Budget ? After + Budget / 4 + 1024 : 0;
  }

  /// Evicts every mask-0 fingerprint to the disk tier. All-or-nothing
  /// commit: the in-RAM entries are erased only after every shard's run
  /// was written, so an I/O failure mid-way loses nothing (some
  /// fingerprints then live in both tiers, which is sound — the
  /// in-memory probe answers first).
  void spillNow() {
    std::vector<uint64_t> Evict;
    for (const auto &KV : Fps)
      if (KV.second == 0)
        Evict.push_back(KV.first);
    Flat.collectZeroMaskFps(Evict);
    if (Evict.empty())
      return; // every resident entry carries a live sleep mask
    std::sort(Evict.begin(), Evict.end(), [](uint64_t A, uint64_t B) {
      unsigned SA = A & (SpillStore::NumShards - 1);
      unsigned SB = B & (SpillStore::NumShards - 1);
      return SA != SB ? SA < SB : A < B;
    });
    Evict.erase(std::unique(Evict.begin(), Evict.end()), Evict.end());
    ++SpillEpoch; // batched disk hints issued before this are now stale
    bool AllOk = true;
    for (size_t Lo = 0; Lo < Evict.size() && AllOk;) {
      unsigned Shard = Evict[Lo] & (SpillStore::NumShards - 1);
      size_t Hi = Lo + 1;
      while (Hi < Evict.size() &&
             (Evict[Hi] & (SpillStore::NumShards - 1)) == Shard)
        ++Hi;
      AllOk = Spill->spill(Shard, Evict.data() + Lo, Hi - Lo);
      Lo = Hi;
    }
    if (!AllOk)
      return; // store marked failed; every entry stays resident
    for (uint64_t Fp : Evict) {
      Fps.erase(Fp);
      auto It = AuditKeys.find(Fp);
      if (It == AuditKeys.end())
        continue;
      // The spilled set is fingerprint-grade: its audit keys go too.
      for (const std::string &K : It->second)
        AuditBytes -= K.size() + sizeof(std::string);
      AuditEntries -= It->second.size();
      AuditKeys.erase(It);
    }
    Flat.dropZeroMask();
  }

  FlatExactTable Flat;                        ///< Exact-mode store
  std::unordered_map<uint64_t, uint64_t> Fps; ///< fp -> sleep mask
  std::unordered_map<uint64_t, std::vector<std::string>> AuditKeys;
  uint64_t AuditEntries = 0;
  uint64_t Collisions = 0;
  uint64_t AuditBytes = 0;   ///< bytes owned by the audit side-table
  SpillStore *Spill = nullptr; ///< disk tier (null = Memory mode)
  uint64_t Budget = 0;         ///< in-RAM byte budget (0 = unlimited)
  uint64_t SpillEpoch = 0;     ///< evictions so far (hint validity)
  uint64_t SpillRearmAt = 0;   ///< eviction hysteresis threshold
  bool OverBudget = false;     ///< Memory-mode abort watermark latched
};

/// The sequential engine's visited table.
class VisitedTable {
public:
  explicit VisitedTable(const CheckerConfig &Cfg,
                        StateHashFn Hash = &hashWords,
                        const Canonicalizer *Canon = nullptr,
                        SpillStore *Spill = nullptr)
      : Mode(Cfg.Visited), Audit(Cfg.AuditFingerprints),
        AuditBudget(Cfg.AuditBudget), Hash(Hash), Canon(Canon) {
    Cell.configure(Spill, Cfg.VisitedBudgetBytes);
  }

  /// \returns true when \p S was newly inserted.
  bool insert(const exec::Machine &M, const exec::State &S) {
    unsigned PermIdx = Canonicalizer::IdentityPerm;
    const int64_t *W = keyWords(S, PermIdx);
    return Cell.insert(Mode, Audit, AuditBudget, fp(M, W), keyView(M, W));
  }

  /// Mask-aware insert for the sleep-set DFS (file comment). Sleep/wake
  /// masks are in raw thread coordinates; translation through the chosen
  /// automorphism happens here.
  InsertOutcome insertMask(const exec::Machine &M, const exec::State &S,
                           uint64_t Sleep, uint64_t &WakeOut) {
    unsigned PermIdx = Canonicalizer::IdentityPerm;
    const int64_t *W = keyWords(S, PermIdx);
    uint64_t CSleep =
        Canon ? Canon->maskToCanonical(PermIdx, Sleep) : Sleep;
    uint64_t CWake = 0;
    InsertOutcome Out = Cell.insertMask(Mode, Audit, AuditBudget, fp(M, W),
                                        CSleep, CWake, keyView(M, W));
    if (Out == InsertOutcome::Wake)
      WakeOut = Canon ? Canon->maskFromCanonical(PermIdx, CWake) : CWake;
    return Out;
  }

  /// True when \p S is already in the table (no insertion).
  bool contains(const exec::Machine &M, const exec::State &S) const {
    unsigned PermIdx = Canonicalizer::IdentityPerm;
    const int64_t *W = keyWords(S, PermIdx);
    return Cell.contains(Mode, fp(M, W), keyView(M, W));
  }

  /// Batched mask-aware insert over an ALREADY-canonicalized word-major
  /// block (the frontier engine's probe): lane K's canonical words sit in
  /// \p B, its fingerprint — computed by the caller in one
  /// fingerprintBatchWith(B, Lanes, hashFn(), ...) sweep, so one hash pass
  /// serves both this table and the DFS on-stack set — in Fp[K], its
  /// chosen automorphism in PermIdx[K], its raw-coordinate sleep mask in
  /// Sleep[K]. Out[K] / WakeOut[K] match insertMask on lane K exactly.
  /// Exact mode prefetches the batch's slot lines and key bytes first,
  /// then gathers each lane into one reused scratch buffer and probes by
  /// view, so revisits allocate nothing.
  void insertMaskBatch(const exec::Machine &M, const exec::SchedBlock &B,
                       unsigned Lanes, const uint64_t *Fp,
                       const unsigned *PermIdx, const uint64_t *Sleep,
                       InsertOutcome *Out, uint64_t *WakeOut) {
    static thread_local std::vector<int64_t> Tmp;
    static thread_local std::vector<uint8_t> Hints;
    Tmp.resize(B.numWords());
    Hints.resize(Lanes);
    uint64_t Epoch = Cell.spillHints(Fp, Lanes, Hints.data());
    if (Mode == VisitedMode::Exact) {
      static thread_local std::vector<const char *> Keys;
      Keys.resize(Lanes);
      for (unsigned K = 0; K < Lanes; ++K)
        Cell.prefetchSlot(Fp[K]);
      for (unsigned K = 0; K < Lanes; ++K)
        Keys[K] = Cell.touchKey(Fp[K]);
      for (unsigned K = 0; K < Lanes; ++K)
        if (Keys[K])
          Cell.prefetchKeyLines(Keys[K]);
    }
    for (unsigned K = 0; K < Lanes; ++K) {
      uint64_t CSleep =
          Canon ? Canon->maskToCanonical(PermIdx[K], Sleep[K]) : Sleep[K];
      uint64_t CWake = 0;
      std::string_view Key;
      if (Mode == VisitedMode::Exact || Audit) {
        B.gatherLane(K, Tmp.data());
        Key = M.encodeWordsView(Tmp.data());
      }
      InsertOutcome O = Cell.insertMask(
          Mode, Audit, AuditBudget, Fp[K], CSleep, CWake, Key,
          Cell.spillEpoch() == Epoch ? Hints[K] : VisitedCell::HintUnknown);
      Out[K] = O;
      WakeOut[K] =
          O == InsertOutcome::Wake
              ? (Canon ? Canon->maskFromCanonical(PermIdx[K], CWake) : CWake)
              : 0;
    }
  }

  /// Batched mask-aware insert straight from per-lane scheduler words —
  /// the no-canonicalization fast path (FrontierBatch::probeMask): no
  /// SoA block involved at all. In Exact mode, three sweeps — slot
  /// prefetch, key prefetch, probe — overlap the probe chain's
  /// dependent cache misses across the batch. Lanes are probed in
  /// order, so an intra-batch duplicate resolves exactly like
  /// sequential insertMask calls; with no canonicalizer, sleep masks
  /// need no coordinate translation.
  void insertMaskWordsBatch(const exec::Machine &M,
                            const int64_t *const *W, const uint64_t *Fp,
                            const uint64_t *Sleep, unsigned Lanes,
                            InsertOutcome *Out, uint64_t *WakeOut) {
    assert(!Canon && "canonicalized batches go through insertMaskBatch");
    static thread_local std::vector<uint8_t> Hints;
    Hints.resize(Lanes);
    uint64_t Epoch = Cell.spillHints(Fp, Lanes, Hints.data());
    if (Mode == VisitedMode::Exact) {
      static thread_local std::vector<const char *> Keys;
      Keys.resize(Lanes);
      for (unsigned K = 0; K < Lanes; ++K)
        Cell.prefetchSlot(Fp[K]);
      for (unsigned K = 0; K < Lanes; ++K)
        Keys[K] = Cell.touchKey(Fp[K]);
      for (unsigned K = 0; K < Lanes; ++K)
        if (Keys[K])
          Cell.prefetchKeyLines(Keys[K]);
    }
    for (unsigned K = 0; K < Lanes; ++K) {
      uint64_t Wake = 0;
      Out[K] = Cell.insertMask(
          Mode, Audit, AuditBudget, Fp[K], Sleep[K], Wake, keyView(M, W[K]),
          Cell.spillEpoch() == Epoch ? Hints[K] : VisitedCell::HintUnknown);
      WakeOut[K] = Out[K] == InsertOutcome::Wake ? Wake : 0;
    }
  }

  /// The injected word-hash (batched callers pre-compute lane
  /// fingerprints with it).
  StateHashFn hashFn() const { return Hash; }

  /// Which dedup mode the table runs (batched callers route their
  /// probe through it).
  VisitedMode mode() const { return Mode; }

  uint64_t collisions() const { return Cell.collisions(); }
  uint64_t keyBytes() const { return Cell.keyBytes(); }

  /// True once a Memory-mode byte budget was crossed (the engines treat
  /// it exactly like hitting MaxStates).
  bool overBudget() const { return Cell.overBudget(); }

private:
  const int64_t *keyWords(const exec::State &S, unsigned &PermIdx) const {
    return Canon ? Canon->canonicalize(S.words(), PermIdx) : S.words();
  }

  uint64_t fp(const exec::Machine &M, const int64_t *Words) const {
    // Routed through the Machine so a packed layout (exec/Tuning.h)
    // hashes the packed words; without packing this is Hash(Words,
    // schedWords()) exactly. Both modes hash: the Fingerprint key, the
    // Exact placement hint.
    return M.fingerprintWordsWith(Words, Hash);
  }

  std::string_view keyView(const exec::Machine &M, const int64_t *W) const {
    // The exact bytes are only needed by Exact mode or the audit
    // (VisitedCell's key contract); everyone else skips the encoding.
    return Mode == VisitedMode::Exact || Audit ? M.encodeWordsView(W)
                                               : std::string_view();
  }

  VisitedMode Mode;
  bool Audit;
  uint64_t AuditBudget;
  StateHashFn Hash;
  const Canonicalizer *Canon;
  VisitedCell Cell;
};

/// Mutex-striped seen-state table for the parallel engine. The stripe
/// count only needs to beat the worker count comfortably; 64 keeps
/// contention negligible without wasting cache. The fingerprint doubles
/// as the shard index (it is computed in both modes — in Exact mode it
/// also places the entry in the shard's flat table).
class ShardedVisited {
public:
  explicit ShardedVisited(const CheckerConfig &Cfg,
                          StateHashFn Hash = &hashWords,
                          const Canonicalizer *Canon = nullptr,
                          SpillStore *Spill = nullptr)
      : Mode(Cfg.Visited), Audit(Cfg.AuditFingerprints),
        AuditBudget(Cfg.AuditBudget / NumShards + 1), Hash(Hash),
        Canon(Canon) {
    // SpillStore::NumShards == our NumShards and both stripe on Fp & 63,
    // so cell k only ever touches spill shard k — always under cell k's
    // mutex, which is the store's whole synchronization story.
    static_assert(SpillStore::NumShards == NumShards,
                  "spill shards must mirror visited shards");
    uint64_t PerShard =
        Cfg.VisitedBudgetBytes ? Cfg.VisitedBudgetBytes / NumShards + 1 : 0;
    for (ShardT &S : Shards)
      S.Cell.configure(Spill, PerShard);
  }

  /// \returns true when \p S was newly inserted. Check-and-insert is
  /// atomic per shard. The canonical image (and its fingerprint, which
  /// picks the shard) is computed outside the shard lock.
  bool insert(const exec::Machine &M, const exec::State &S) {
    unsigned PermIdx = Canonicalizer::IdentityPerm;
    const int64_t *W = Canon ? Canon->canonicalize(S.words(), PermIdx)
                             : S.words();
    uint64_t Fp = M.fingerprintWordsWith(W, Hash);
    ShardT &Shard = Shards[Fp & (NumShards - 1)];
    std::lock_guard<std::mutex> Lock(Shard.Mu);
    bool Fresh = Shard.Cell.insert(Mode, Audit, AuditBudget, Fp,
                                   keyView(M, W));
    if (Shard.Cell.overBudget())
      AnyOverBudget.store(true, std::memory_order_relaxed);
    return Fresh;
  }

  /// True when \p S is already in the table. Used by the parallel ample
  /// engine's cycle-proviso probe: insertion happens-before expansion
  /// under the shard mutex, so the last-expanded state on any reduced
  /// cycle is guaranteed to see its successor here (docs/POR.md).
  /// Canonicalization keeps that argument intact: both the insert and
  /// the probe key on the same canonical image.
  bool contains(const exec::Machine &M, const exec::State &S) const {
    unsigned PermIdx = Canonicalizer::IdentityPerm;
    const int64_t *W = Canon ? Canon->canonicalize(S.words(), PermIdx)
                             : S.words();
    uint64_t Fp = M.fingerprintWordsWith(W, Hash);
    const ShardT &Shard = Shards[Fp & (NumShards - 1)];
    std::lock_guard<std::mutex> Lock(Shard.Mu);
    return Shard.Cell.contains(Mode, Fp, keyView(M, W));
  }

  /// Batched check-and-insert over an ALREADY-canonicalized word-major
  /// block: lane fingerprints — computed by the caller in one
  /// fingerprintBatchWith(B, Lanes, hashFn(), ...) sweep — pick the
  /// shards (in Exact mode too, exactly like insert()), lanes are grouped
  /// by target shard, and each touched shard is locked exactly once per
  /// batch — amortizing the per-state lock/unlock the scalar path pays.
  /// Within a shard group the Exact probe runs the same
  /// prefetch-slots/prefetch-keys/probe pipeline as the sequential
  /// batch. Fresh[K] matches what insert() on lane K would have
  /// returned. \p AoS, when non-null, points at the lanes' row-major
  /// states and must hold the same words as \p B (the
  /// no-canonicalization case): keys are then viewed straight from the
  /// states, skipping the per-lane SoA gather.
  void insertBatch(const exec::Machine &M, const exec::SchedBlock &B,
                   unsigned Lanes, const uint64_t *Fp, uint8_t *Fresh,
                   const exec::State *AoS = nullptr) {
    static thread_local std::vector<int64_t> Tmp;
    static thread_local std::vector<uint8_t> Done;
    static thread_local std::vector<unsigned> Group;
    Tmp.resize(B.numWords());
    Done.assign(Lanes, 0);
    for (unsigned K = 0; K < Lanes; ++K) {
      if (Done[K])
        continue;
      size_t ShardIdx = Fp[K] & (NumShards - 1);
      Group.clear();
      for (unsigned J = K; J < Lanes; ++J)
        if (!Done[J] && (Fp[J] & (NumShards - 1)) == ShardIdx) {
          Done[J] = 1;
          Group.push_back(J);
        }
      ShardT &Shard = Shards[ShardIdx];
      std::lock_guard<std::mutex> Lock(Shard.Mu);
      // Disk hints for the whole group in one sorted sweep, under the
      // same lock the inserts run under; a mid-group eviction (epoch
      // bump) downgrades the remaining lanes to a scalar disk probe.
      static thread_local std::vector<uint64_t> GFp;
      static thread_local std::vector<uint8_t> GHint;
      GFp.clear();
      for (unsigned J : Group)
        GFp.push_back(Fp[J]);
      GHint.resize(Group.size());
      uint64_t Epoch = Shard.Cell.spillHints(
          GFp.data(), static_cast<unsigned>(Group.size()), GHint.data());
      if (Mode == VisitedMode::Exact) {
        for (unsigned J : Group)
          Shard.Cell.prefetchSlot(Fp[J]);
        for (unsigned J : Group)
          if (const char *K = Shard.Cell.touchKey(Fp[J]))
            Shard.Cell.prefetchKeyLines(K);
      }
      for (size_t GI = 0; GI < Group.size(); ++GI) {
        unsigned J = Group[GI];
        std::string_view Key;
        if (Mode == VisitedMode::Exact || Audit) {
          const int64_t *W;
          if (AoS) {
            W = AoS[J].words();
          } else {
            B.gatherLane(J, Tmp.data());
            W = Tmp.data();
          }
          Key = M.encodeWordsView(W);
        }
        Fresh[J] = Shard.Cell.insert(Mode, Audit, AuditBudget, Fp[J], Key,
                                     Shard.Cell.spillEpoch() == Epoch
                                         ? GHint[GI]
                                         : VisitedCell::HintUnknown);
      }
      if (Shard.Cell.overBudget())
        AnyOverBudget.store(true, std::memory_order_relaxed);
    }
  }

  /// The injected word-hash (batched callers pre-compute lane
  /// fingerprints with it).
  StateHashFn hashFn() const { return Hash; }

  uint64_t collisions() const {
    uint64_t Total = 0;
    for (const ShardT &Shard : Shards) {
      std::lock_guard<std::mutex> Lock(Shard.Mu);
      Total += Shard.Cell.collisions();
    }
    return Total;
  }
  uint64_t keyBytes() const {
    uint64_t Total = 0;
    for (const ShardT &Shard : Shards) {
      std::lock_guard<std::mutex> Lock(Shard.Mu);
      Total += Shard.Cell.keyBytes();
    }
    return Total;
  }

  /// True once ANY shard crossed a Memory-mode budget (one relaxed load
  /// — cheap enough for the workers' per-state abort check; the flag is
  /// set under the crossing shard's lock).
  bool overBudget() const {
    return AnyOverBudget.load(std::memory_order_relaxed);
  }

private:
  static constexpr size_t NumShards = 64;
  struct alignas(64) ShardT {
    mutable std::mutex Mu;
    VisitedCell Cell;
  };

  std::string_view keyView(const exec::Machine &M, const int64_t *W) const {
    return Mode == VisitedMode::Exact || Audit ? M.encodeWordsView(W)
                                               : std::string_view();
  }

  VisitedMode Mode;
  bool Audit;
  uint64_t AuditBudget;
  StateHashFn Hash;
  const Canonicalizer *Canon;
  std::atomic<bool> AnyOverBudget{false};
  ShardT Shards[NumShards];
};

} // namespace detail
} // namespace verify
} // namespace psketch

#endif // PSKETCH_VERIFY_VISITED_H
