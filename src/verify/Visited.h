//===- verify/Visited.h - Exact and fingerprint visited tables --*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header: the seen-state tables behind CheckerConfig::Visited,
/// shared by the sequential checker (one VisitedTable) and the parallel
/// work-stealing engine (a 64-shard ShardedVisited). Both wrap the same
/// VisitedCell so Exact and Fingerprint dedup — including the optional
/// collision audit — behave identically in either engine.
///
/// Exact mode owns the full scheduler-relevant key (Machine::encodeState,
/// 8 bytes per state word). Fingerprint mode stores only the 8-byte hash
/// of that key; the audit (CheckerConfig::AuditFingerprints) additionally
/// keeps a bounded side-table of full keys per fingerprint so a hash hit
/// can be distinguished from a genuine revisit: a mismatch increments the
/// collision counter and the state is explored anyway (Exact fallback).
///
/// Every entry also carries the sleep-set mask the state was (last)
/// entered with, for the sequential ample engine (docs/POR.md): plain
/// dedup is the mask-0 special case, so the pre-POR engines are
/// unchanged. A revisit with sleep set T of a state stored with mask B
/// is covered only when B is a subset of T (the prior visit explored
/// every transition this one would); otherwise the revisit must explore
/// the woken transitions B \ T and the stored mask shrinks to the
/// intersection — strictly, so re-expansion terminates.
///
/// Symmetry (CheckerConfig::Symmetry, docs/SYMMETRY.md): when a
/// Canonicalizer is attached, both tables key on the canonical image of
/// the state — computed here, *before* any fingerprinting, sharding, or
/// sleep-mask comparison, so all of those operate in canonical
/// coordinates. Sleep masks are per-thread bitsets in raw coordinates;
/// the chosen automorphism's CtxMap translates them into canonical
/// coordinates on the way in and back out on Wake, which is what makes
/// mask subset checks across symmetric revisits meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_VERIFY_VISITED_H
#define PSKETCH_VERIFY_VISITED_H

#include "exec/Machine.h"
#include "support/Hash.h"
#include "verify/Canon.h"
#include "verify/ModelChecker.h"

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace psketch {
namespace verify {
namespace detail {

/// Injectable fingerprint function over a state's scheduler-relevant
/// words. Production code uses hashWords; the forced-collision unit test
/// substitutes a degenerate hash.
using StateHashFn = uint64_t (*)(const int64_t *Words, size_t NumWords);

/// What a sleep-mask-aware insert decided (see the file comment).
enum class InsertOutcome : uint8_t {
  Fresh, ///< newly inserted: explore the state
  Prune, ///< revisit, prior visit covers this one: skip
  Wake,  ///< revisit, but some previously-slept transitions must now run
};

/// One dedup domain: the whole table sequentially, one shard in the
/// parallel engine. Not synchronized — callers lock around it.
class VisitedCell {
public:
  /// Mask-aware check-and-insert. \p Sleep is the sleep mask the state is
  /// being entered with (0 when sleep sets are off); on Wake, \p WakeOut
  /// receives the transitions a prior visit slept through that this one
  /// must explore. \p Fp is the state's fingerprint; \p KeyFn lazily
  /// materializes the exact key (only called when this mode needs the
  /// bytes, so Fingerprint mode without audit never allocates).
  template <typename KeyFnT>
  InsertOutcome insertMask(VisitedMode Mode, bool Audit, uint64_t AuditBudget,
                           uint64_t Fp, uint64_t Sleep, uint64_t &WakeOut,
                           KeyFnT &&KeyFn) {
    uint64_t *Slot = nullptr;
    if (Mode == VisitedMode::Exact) {
      auto [It, New] = Exact.try_emplace(KeyFn(), Sleep);
      if (New) {
        KeyBytes += It->first.size();
        return InsertOutcome::Fresh;
      }
      Slot = &It->second;
    } else {
      auto [It, New] = Fps.try_emplace(Fp, Sleep);
      if (New) {
        KeyBytes += sizeof(uint64_t);
        if (Audit && AuditEntries < AuditBudget) {
          std::string Key = KeyFn();
          KeyBytes += Key.size();
          AuditKeys[Fp].push_back(std::move(Key));
          ++AuditEntries;
        }
        return InsertOutcome::Fresh;
      }
      // Fingerprint hit. When audited (and within budget at first sight)
      // compare exact bytes: a mismatch is a real collision — record it
      // and fall back to Exact behaviour, exploring the state. Colliding
      // states share one mask slot; mask decisions across a detected
      // collision inherit the same residual risk the audit already
      // counts.
      if (Audit) {
        auto AIt = AuditKeys.find(Fp);
        if (AIt != AuditKeys.end()) {
          std::string Key = KeyFn();
          bool Seen = false;
          for (const std::string &K : AIt->second)
            if (K == Key) {
              Seen = true;
              break;
            }
          if (!Seen) {
            ++Collisions;
            KeyBytes += Key.size();
            AIt->second.push_back(std::move(Key));
            return InsertOutcome::Fresh;
          }
        }
        // Over budget when first seen: indistinguishable from a revisit.
      }
      Slot = &It->second;
    }
    // Genuine revisit: the prior visits explored everything outside the
    // stored mask. Covered iff that includes everything outside Sleep.
    uint64_t Stored = *Slot;
    if ((Stored & ~Sleep) == 0)
      return InsertOutcome::Prune;
    WakeOut = Stored & ~Sleep; // slept then, needed now
    *Slot = Stored & Sleep;    // strictly shrinks: re-expansion terminates
    return InsertOutcome::Wake;
  }

  /// Plain check-and-insert (the mask-0 case). \returns true when the
  /// state was newly inserted (caller explores it), false on a revisit.
  template <typename KeyFnT>
  bool insert(VisitedMode Mode, bool Audit, uint64_t AuditBudget,
              uint64_t Fp, KeyFnT &&KeyFn) {
    uint64_t Wake = 0;
    return insertMask(Mode, Audit, AuditBudget, Fp, /*Sleep=*/0, Wake,
                      std::forward<KeyFnT>(KeyFn)) == InsertOutcome::Fresh;
  }

  /// Read-only membership probe (the parallel/BFS cycle proviso). In
  /// Fingerprint mode a collision can answer a false "yes", which only
  /// forces a sound full expansion.
  template <typename KeyFnT>
  bool contains(VisitedMode Mode, uint64_t Fp, KeyFnT &&KeyFn) const {
    if (Mode == VisitedMode::Exact)
      return Exact.count(KeyFn()) != 0;
    return Fps.count(Fp) != 0;
  }

  uint64_t collisions() const { return Collisions; }
  uint64_t keyBytes() const { return KeyBytes; }

private:
  std::unordered_map<std::string, uint64_t> Exact; ///< key -> sleep mask
  std::unordered_map<uint64_t, uint64_t> Fps;      ///< fp -> sleep mask
  std::unordered_map<uint64_t, std::vector<std::string>> AuditKeys;
  uint64_t AuditEntries = 0;
  uint64_t Collisions = 0;
  uint64_t KeyBytes = 0;
};

/// The sequential engine's visited table.
class VisitedTable {
public:
  explicit VisitedTable(const CheckerConfig &Cfg,
                        StateHashFn Hash = &hashWords,
                        const Canonicalizer *Canon = nullptr)
      : Mode(Cfg.Visited), Audit(Cfg.AuditFingerprints),
        AuditBudget(Cfg.AuditBudget), Hash(Hash), Canon(Canon) {}

  /// \returns true when \p S was newly inserted.
  bool insert(const exec::Machine &M, const exec::State &S) {
    unsigned PermIdx = Canonicalizer::IdentityPerm;
    const int64_t *W = keyWords(S, PermIdx);
    return Cell.insert(Mode, Audit, AuditBudget, fp(M, W),
                       [&] { return M.encodeWords(W); });
  }

  /// Mask-aware insert for the sleep-set DFS (file comment). Sleep/wake
  /// masks are in raw thread coordinates; translation through the chosen
  /// automorphism happens here.
  InsertOutcome insertMask(const exec::Machine &M, const exec::State &S,
                           uint64_t Sleep, uint64_t &WakeOut) {
    unsigned PermIdx = Canonicalizer::IdentityPerm;
    const int64_t *W = keyWords(S, PermIdx);
    uint64_t CSleep =
        Canon ? Canon->maskToCanonical(PermIdx, Sleep) : Sleep;
    uint64_t CWake = 0;
    InsertOutcome Out =
        Cell.insertMask(Mode, Audit, AuditBudget, fp(M, W), CSleep, CWake,
                        [&] { return M.encodeWords(W); });
    if (Out == InsertOutcome::Wake)
      WakeOut = Canon ? Canon->maskFromCanonical(PermIdx, CWake) : CWake;
    return Out;
  }

  /// True when \p S is already in the table (no insertion).
  bool contains(const exec::Machine &M, const exec::State &S) const {
    unsigned PermIdx = Canonicalizer::IdentityPerm;
    const int64_t *W = keyWords(S, PermIdx);
    return Cell.contains(Mode, fp(M, W), [&] { return M.encodeWords(W); });
  }

  uint64_t collisions() const { return Cell.collisions(); }
  uint64_t keyBytes() const { return Cell.keyBytes(); }

private:
  const int64_t *keyWords(const exec::State &S, unsigned &PermIdx) const {
    return Canon ? Canon->canonicalize(S.words(), PermIdx) : S.words();
  }

  uint64_t fp(const exec::Machine &M, const int64_t *Words) const {
    // Routed through the Machine so a packed layout (exec/Tuning.h)
    // hashes the packed words; without packing this is Hash(Words,
    // schedWords()) exactly.
    return Mode == VisitedMode::Fingerprint
               ? M.fingerprintWordsWith(Words, Hash)
               : 0;
  }

  VisitedMode Mode;
  bool Audit;
  uint64_t AuditBudget;
  StateHashFn Hash;
  const Canonicalizer *Canon;
  VisitedCell Cell;
};

/// Mutex-striped seen-state table for the parallel engine. The stripe
/// count only needs to beat the worker count comfortably; 64 keeps
/// contention negligible without wasting cache. The fingerprint doubles
/// as the shard index (it is computed in both modes — in Exact mode it
/// replaces the std::hash the shard selector used to need).
class ShardedVisited {
public:
  explicit ShardedVisited(const CheckerConfig &Cfg,
                          StateHashFn Hash = &hashWords,
                          const Canonicalizer *Canon = nullptr)
      : Mode(Cfg.Visited), Audit(Cfg.AuditFingerprints),
        AuditBudget(Cfg.AuditBudget / NumShards + 1), Hash(Hash),
        Canon(Canon) {}

  /// \returns true when \p S was newly inserted. Check-and-insert is
  /// atomic per shard. The canonical image (and its fingerprint, which
  /// picks the shard) is computed outside the shard lock.
  bool insert(const exec::Machine &M, const exec::State &S) {
    unsigned PermIdx = Canonicalizer::IdentityPerm;
    const int64_t *W = Canon ? Canon->canonicalize(S.words(), PermIdx)
                             : S.words();
    uint64_t Fp = M.fingerprintWordsWith(W, Hash);
    ShardT &Shard = Shards[Fp & (NumShards - 1)];
    std::lock_guard<std::mutex> Lock(Shard.Mu);
    return Shard.Cell.insert(Mode, Audit, AuditBudget, Fp,
                             [&] { return M.encodeWords(W); });
  }

  /// True when \p S is already in the table. Used by the parallel ample
  /// engine's cycle-proviso probe: insertion happens-before expansion
  /// under the shard mutex, so the last-expanded state on any reduced
  /// cycle is guaranteed to see its successor here (docs/POR.md).
  /// Canonicalization keeps that argument intact: both the insert and
  /// the probe key on the same canonical image.
  bool contains(const exec::Machine &M, const exec::State &S) const {
    unsigned PermIdx = Canonicalizer::IdentityPerm;
    const int64_t *W = Canon ? Canon->canonicalize(S.words(), PermIdx)
                             : S.words();
    uint64_t Fp = M.fingerprintWordsWith(W, Hash);
    const ShardT &Shard = Shards[Fp & (NumShards - 1)];
    std::lock_guard<std::mutex> Lock(Shard.Mu);
    return Shard.Cell.contains(Mode, Fp, [&] { return M.encodeWords(W); });
  }

  uint64_t collisions() const {
    uint64_t Total = 0;
    for (const ShardT &Shard : Shards) {
      std::lock_guard<std::mutex> Lock(Shard.Mu);
      Total += Shard.Cell.collisions();
    }
    return Total;
  }
  uint64_t keyBytes() const {
    uint64_t Total = 0;
    for (const ShardT &Shard : Shards) {
      std::lock_guard<std::mutex> Lock(Shard.Mu);
      Total += Shard.Cell.keyBytes();
    }
    return Total;
  }

private:
  static constexpr size_t NumShards = 64;
  struct alignas(64) ShardT {
    mutable std::mutex Mu;
    VisitedCell Cell;
  };
  VisitedMode Mode;
  bool Audit;
  uint64_t AuditBudget;
  StateHashFn Hash;
  const Canonicalizer *Canon;
  ShardT Shards[NumShards];
};

} // namespace detail
} // namespace verify
} // namespace psketch

#endif // PSKETCH_VERIFY_VISITED_H
