//===- verify/SearchCore.h - Shared search step semantics -------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header: the step-level semantics shared by the sequential
/// checker (ModelChecker.cpp) and the parallel work-stealing engine
/// (ParallelChecker.cpp) — thread readiness, the POR local-step chain,
/// frontier classification, epilogue checking, and one random-schedule
/// falsifier run. Keeping these in one place is what guarantees the two
/// engines can never disagree about what a schedule does.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_VERIFY_SEARCHCORE_H
#define PSKETCH_VERIFY_SEARCHCORE_H

#include "support/Rng.h"
#include "verify/ModelChecker.h"

#include <cassert>
#include <vector>

namespace psketch {
namespace verify {
namespace detail {

/// Thread readiness at a state.
enum class Readiness : uint8_t { Finished, Ready, Blocked, WaitViolation };

inline Readiness readiness(const exec::Machine &M, exec::State &S,
                           unsigned Ctx, exec::Violation &V) {
  uint32_t Pc = M.normalizePc(S, Ctx);
  const flat::FlatBody &B = M.bodyOf(Ctx);
  if (Pc >= B.Steps.size())
    return Readiness::Finished;
  const flat::Step &St = B.Steps[Pc];
  if (St.DynGuard) {
    int64_t Guard = M.eval(S, Ctx, St.DynGuard, V);
    if (V.isViolation())
      return Readiness::WaitViolation;
    if (Guard == 0)
      return Readiness::Ready; // dynamic no-op: always runnable
  }
  if (St.WaitCond) {
    int64_t Wait = M.eval(S, Ctx, St.WaitCond, V);
    if (V.isViolation())
      return Readiness::WaitViolation;
    if (Wait == 0)
      return Readiness::Blocked;
  }
  return Readiness::Ready;
}

/// Runs every pending thread-local step (the Local layer of the POR;
/// no-op under PorMode::Off). \returns false and fills \p Cex on a
/// violation inside a local step.
inline bool advanceLocal(const exec::Machine &M, PorMode Por, exec::State &S,
                         std::vector<TraceStep> &Path, Counterexample &Cex) {
  if (Por == PorMode::Off)
    return true;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (unsigned Ctx = 0; Ctx < M.numThreads(); ++Ctx) {
      while (M.nextStepIsLocal(S, Ctx)) {
        exec::Violation V;
        exec::ExecOutcome Out = M.execStep(S, Ctx, V);
        if (Out.Result == exec::StepResult::Violated) {
          Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
          Cex.Steps = Path;
          Cex.V = V;
          Cex.Where = Counterexample::Phase::Parallel;
          return false;
        }
        assert(Out.Result == exec::StepResult::Ok && "local step must run");
        Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
        Progress = true;
      }
    }
  }
  return true;
}

/// Classifies all threads. Fills \p ReadyOut, \p BlockedOut. \returns
/// false and fills \p Cex if evaluating some wait condition violates
/// memory safety.
inline bool classifyAll(const exec::Machine &M, exec::State &S,
                        std::vector<unsigned> &ReadyOut,
                        std::vector<TraceStep> &BlockedOut,
                        const std::vector<TraceStep> &Path,
                        Counterexample &Cex) {
  ReadyOut.clear();
  BlockedOut.clear();
  for (unsigned Ctx = 0; Ctx < M.numThreads(); ++Ctx) {
    exec::Violation V;
    switch (readiness(M, S, Ctx, V)) {
    case Readiness::Finished:
      break;
    case Readiness::Ready:
      ReadyOut.push_back(Ctx);
      break;
    case Readiness::Blocked:
      BlockedOut.push_back(TraceStep{Ctx, S.pc(Ctx)});
      break;
    case Readiness::WaitViolation:
      Cex.Steps = Path;
      Cex.Steps.push_back(TraceStep{Ctx, S.pc(Ctx)});
      Cex.V = V;
      Cex.Where = Counterexample::Phase::Parallel;
      return false;
    }
  }
  return true;
}

/// Checks the epilogue from a fully-finished parallel state. \returns
/// true if the run is clean.
inline bool checkEpilogue(const exec::Machine &M, const exec::State &S,
                          const std::vector<TraceStep> &Path,
                          Counterexample &Cex) {
  exec::State Copy = S;
  exec::Violation V;
  if (M.runToCompletion(Copy, M.epilogueCtx(), V))
    return true;
  Cex.Steps = Path;
  Cex.V = V;
  Cex.Where = Counterexample::Phase::Epilogue;
  return false;
}

/// One random schedule from \p Start. \returns true if it completed
/// cleanly; otherwise fills \p Cex. The ample reduction never applies
/// here (a single schedule explores no alternatives), so Local and Ample
/// falsifier runs are identical.
inline bool randomRun(const exec::Machine &M, PorMode Por,
                      const exec::State &Start, Rng &R, Counterexample &Cex) {
  exec::State S = Start;
  std::vector<TraceStep> Path;
  std::vector<unsigned> Ready;
  std::vector<TraceStep> Blocked;
  for (;;) {
    if (!advanceLocal(M, Por, S, Path, Cex))
      return false;
    if (!classifyAll(M, S, Ready, Blocked, Path, Cex))
      return false;
    if (Ready.empty()) {
      if (Blocked.empty())
        return checkEpilogue(M, S, Path, Cex);
      // All live threads blocked: deadlock.
      Cex.Steps = Path;
      Cex.V.VKind = exec::Violation::Kind::Deadlock;
      Cex.V.Label = "deadlock: all live threads blocked";
      Cex.Where = Counterexample::Phase::Parallel;
      Cex.DeadlockSet = Blocked;
      return false;
    }
    unsigned Ctx = Ready[R.below(Ready.size())];
    exec::Violation V;
    exec::ExecOutcome Out = M.execStep(S, Ctx, V);
    if (Out.Result == exec::StepResult::Violated) {
      Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
      Cex.Steps = Path;
      Cex.V = V;
      Cex.Where = Counterexample::Phase::Parallel;
      return false;
    }
    assert(Out.Result == exec::StepResult::Ok && "ready thread must step");
    Path.push_back(TraceStep{Ctx, Out.ExecutedPc});
  }
}

//===----------------------------------------------------------------------===//
// Ample-set selection and sleep sets (PorMode::Ample; docs/POR.md).
// Shared by all engines so the copy DFS, the undo-log DFS, the BFS, and
// the parallel checker make the same reduction decisions at the same
// states.
//===----------------------------------------------------------------------===//

/// Picks a singleton ample set at a state with \p Ready contexts (pcs
/// normalized): the first ready context whose next step is independent
/// of every other thread's remaining steps. Such a singleton satisfies
/// C0 (nonempty subset of the enabled set) and C1 (no dependent action
/// can fire before it — the persistent-set argument, docs/POR.md); the
/// caller enforces the C2 cycle proviso. A pure function of the state,
/// so every engine reduces identically. \returns the index into \p
/// Ready, or -1 when no singleton qualifies or fewer than two contexts
/// are ready (full expansion — reducing a single-choice state would
/// change nothing and only complicate the proviso bookkeeping).
inline int selectAmple(const exec::Machine &M, exec::State &S,
                       const std::vector<unsigned> &Ready) {
  if (Ready.size() < 2)
    return -1;
  for (size_t I = 0; I < Ready.size(); ++I)
    if (M.singletonIndependent(S, Ready[I]))
      return static_cast<int>(I);
  return -1;
}

/// Sleep sets are per-thread bit masks; the sequential engines disable
/// them beyond 64 threads (far past anything the suite models).
constexpr unsigned MaxSleepThreads = 64;

/// Builds the sleep mask a child inherits after executing \p Ctx's step
/// at \p Pc: of the contexts slept or already branched at the parent
/// (\p Prior), those whose pending step commutes with the executed one
/// stay asleep — their step still leads into an already-covered
/// subtree; a dependent step is woken. \p S is the parent state (pcs
/// normalized; \p Ctx's own pc having advanced is harmless — it is
/// excluded anyway, its pending transition changed).
inline uint64_t sleepAfter(const exec::Machine &M, const exec::State &S,
                           unsigned Ctx, uint32_t Pc, uint64_t Prior) {
  uint64_t Out = 0;
  for (unsigned U = 0; U < M.numThreads() && U < MaxSleepThreads; ++U) {
    if (U == Ctx || !(Prior & (1ull << U)))
      continue;
    if (M.commutes(Ctx, Pc, U, S.pc(U)))
      Out |= 1ull << U;
  }
  return Out;
}

/// Derives an independent SplitMix64 stream seed for falsifier run (or
/// worker) \p StreamIndex of a checker seeded with \p Seed. One extra
/// mixing round decorrelates adjacent indices.
inline uint64_t deriveStreamSeed(uint64_t Seed, uint64_t StreamIndex) {
  uint64_t Z = Seed + (StreamIndex + 1) * 0x9e3779b97f4a7c15ull;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

/// The canonical "smaller counterexample" order used when several are
/// found before cancellation: shorter trace first, then lexicographic on
/// the (thread, pc) step sequence — a total order independent of which
/// worker found which trace.
inline bool cexLess(const Counterexample &A, const Counterexample &B) {
  if (A.Steps.size() != B.Steps.size())
    return A.Steps.size() < B.Steps.size();
  for (size_t I = 0; I < A.Steps.size(); ++I) {
    if (A.Steps[I].Thread != B.Steps[I].Thread)
      return A.Steps[I].Thread < B.Steps[I].Thread;
    if (A.Steps[I].Pc != B.Steps[I].Pc)
      return A.Steps[I].Pc < B.Steps[I].Pc;
  }
  return false;
}

/// The parallel work-stealing engine (ParallelChecker.cpp). \p Workers
/// must be >= 2; the sequential engine handles 1.
CheckResult checkCandidateParallel(const exec::Machine &M,
                                   const CheckerConfig &Cfg,
                                   unsigned Workers);

/// The sequential engine (ModelChecker.cpp), exposed so the parallel
/// engine can re-derive a deterministic canonical counterexample after
/// its verdict phase. \p UseFalsifier overrides Cfg.UseRandomFalsifier.
CheckResult checkCandidateSequential(const exec::Machine &M,
                                     const CheckerConfig &Cfg,
                                     bool UseFalsifier);

} // namespace detail
} // namespace verify
} // namespace psketch

#endif // PSKETCH_VERIFY_SEARCHCORE_H
