//===- verify/Canon.h - Symmetry-canonical state representatives -*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The state canonicalizer behind CheckerConfig::Symmetry. Construction
/// runs the static symmetry inference (analysis/SymmetryInfer.h) on the
/// Machine's candidate and compiles every accepted thread automorphism
/// into a word-level permutation table over the scheduler-relevant state
/// prefix. canonicalize() then maps a state through each automorphism
/// and returns the lexicographically smallest image — the orbit
/// representative — which is what the visited tables key on, so states
/// differing only by a symmetric-thread permutation collapse.
///
/// Soundness (docs/SYMMETRY.md): each compiled permutation is an
/// automorphism of the transition system and of the violation predicate,
/// so if canon(t) == canon(s) then t = g(s) for some automorphism g in
/// the generated group, and every execution from s maps step-for-step to
/// an execution from t with corresponding violations. Merging s with t
/// therefore never hides a bug; search states themselves stay raw (only
/// probe keys are canonical), so every reported trace is a real
/// execution.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_VERIFY_CANON_H
#define PSKETCH_VERIFY_CANON_H

#include "analysis/SymmetryInfer.h"
#include "exec/Machine.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace psketch {
namespace verify {

class Canonicalizer {
public:
  /// The PermIdx value canonicalize() reports when the raw state already
  /// is its own orbit representative.
  static constexpr unsigned IdentityPerm = ~0u;

  /// Runs symmetry inference for \p M's program + candidate and compiles
  /// the accepted automorphisms. active() is false when no non-identity
  /// automorphism was proven (canonicalization would be the identity).
  explicit Canonicalizer(const exec::Machine &M);

  bool active() const { return !Perms.empty(); }
  unsigned numOrbits() const { return Plan.NumOrbits; }
  size_t numPerms() const { return Perms.size(); }
  const analysis::SymmetryPlan &plan() const { return Plan; }
  /// Inference plus table-compilation time, seconds (the per-candidate
  /// setup cost surfaced as CheckResult::CanonTime).
  double buildSeconds() const { return BuildSecs; }

  /// Maps the SchedWords-long prefix \p Words through every compiled
  /// automorphism and returns the lexicographic minimum (identity
  /// included). \p PermIdx receives the index of the chosen automorphism
  /// or IdentityPerm. The returned pointer either is \p Words itself or
  /// aliases a thread-local scratch buffer that stays valid until the
  /// next canonicalize() call on the same thread — consume it before
  /// probing again.
  const int64_t *canonicalize(const int64_t *Words, unsigned &PermIdx) const;

  /// Applies automorphism \p PermIdx to \p In (SchedWords words) into
  /// \p Out. Exposed for the canon(permute(s)) == canon(s) property test.
  void apply(unsigned PermIdx, const int64_t *In, int64_t *Out) const;

  /// Batched canonicalize over a word-major SoA block: lane K of \p Out
  /// receives the orbit representative of lane K of \p In, and PermIdx[K]
  /// the chosen automorphism (IdentityPerm when the raw lane already
  /// wins), for each of the first \p Lanes lanes. The per-lane tie-break
  /// is exactly canonicalize()'s — automorphisms tried in compile order,
  /// each applied to the RAW lane, and only a strictly smaller image
  /// replaces the current minimum — so every lane is bit-identical to the
  /// scalar path. \p Out is reshaped to \p In's geometry.
  void canonicalizeBatch(const exec::SchedBlock &In, unsigned Lanes,
                         exec::SchedBlock &Out, unsigned *PermIdx) const;

  /// Translates a per-thread bitmask (sleep/wake sets) into the
  /// coordinates of the canonical image chosen for a state: raw thread t
  /// becomes canonical thread CtxMap[t]. IdentityPerm is a no-op.
  uint64_t maskToCanonical(unsigned PermIdx, uint64_t Raw) const;
  /// The inverse translation (canonical thread c back to InvCtxMap[c]).
  uint64_t maskFromCanonical(unsigned PermIdx, uint64_t Canon) const;

  /// Probes whose canonical form came from a non-identity automorphism —
  /// i.e. how often canonicalization actually rewrote a key.
  uint64_t canonHits() const {
    return Hits.load(std::memory_order_relaxed);
  }

private:
  /// One automorphism compiled against the StateLayout: canonical word w
  /// takes the (possibly value-mapped) content of raw word Src[w].
  struct Compiled {
    std::vector<uint32_t> Src;  ///< dst word -> src word (SchedWords long)
    std::vector<int32_t> Val;   ///< dst word -> ValTables index or -1
    std::vector<unsigned> CtxMap, InvCtxMap;
    /// Value maps (sorted by source value) referenced by Val.
    std::vector<std::vector<std::pair<int64_t, int64_t>>> ValTables;
  };

  analysis::SymmetryPlan Plan;
  std::vector<Compiled> Perms;
  unsigned SchedWords = 0;
  double BuildSecs = 0;
  mutable std::atomic<uint64_t> Hits{0};
};

} // namespace verify
} // namespace psketch

#endif // PSKETCH_VERIFY_CANON_H
