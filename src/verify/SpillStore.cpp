//===- verify/SpillStore.cpp -----------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "verify/SpillStore.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <filesystem>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace psketch;
using namespace psketch::verify::detail;
namespace fs = std::filesystem;

size_t SpillStore::TestFailAfterBytes = SIZE_MAX;

namespace {
/// Distinguishes spill directories of concurrent stores in one process
/// (the DeterministicCex re-derivation runs its own store while the
/// primary search's is still alive).
std::atomic<uint64_t> NextStoreSeq{0};

int processId() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<int>(::getpid());
#else
  return 0;
#endif
}
} // namespace

SpillStore::SpillStore(const std::string &BaseDir) {
  std::error_code Ec;
  fs::path Base =
      BaseDir.empty() ? fs::temp_directory_path(Ec) : fs::path(BaseDir);
  if (Ec) {
    Failed.store(true, std::memory_order_relaxed);
    return;
  }
  char Leaf[64];
  std::snprintf(Leaf, sizeof(Leaf), "psketch-spill-%d-%llu", processId(),
                static_cast<unsigned long long>(
                    NextStoreSeq.fetch_add(1, std::memory_order_relaxed)));
  fs::path P = Base / Leaf;
  fs::create_directories(P, Ec);
  if (Ec || !fs::is_directory(P, Ec)) {
    Failed.store(true, std::memory_order_relaxed);
    return;
  }
  // Probe writability up front: an unwritable directory should surface
  // as a construction-time fallback, not as a mid-search spill failure.
  fs::path Probe = P / ".probe";
  if (std::FILE *F = std::fopen(Probe.string().c_str(), "wb")) {
    std::fclose(F);
    fs::remove(Probe, Ec);
  } else {
    fs::remove_all(P, Ec);
    Failed.store(true, std::memory_order_relaxed);
    return;
  }
  Dir = P.string();
}

SpillStore::~SpillStore() {
  for (ShardState &S : Shards)
    S.Runs.clear(); // unmap before removing the files
  if (!Dir.empty()) {
    std::error_code Ec;
    fs::remove_all(Dir, Ec); // best effort; only our own subdirectory
  }
}

bool SpillStore::writeRun(unsigned Shard, const uint64_t *Fps, size_t N,
                          Run &Out) {
  char Leaf[32];
  std::snprintf(Leaf, sizeof(Leaf), "s%02u-r%06u.bin", Shard,
                Shards[Shard].NextSeq++);
  std::string Path = (fs::path(Dir) / Leaf).string();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Failed.store(true, std::memory_order_relaxed);
    return false;
  }
  size_t Bytes = N * sizeof(uint64_t);
  bool Ok =
      BytesWritten.fetch_add(Bytes, std::memory_order_relaxed) + Bytes <=
      TestFailAfterBytes;
  Ok = Ok && std::fwrite(Fps, sizeof(uint64_t), N, F) == N;
  Ok = std::fclose(F) == 0 && Ok;
  if (Ok) {
    Out.Path = Path;
    Ok = Out.Map.map(Path) && Out.count() == N;
  }
  if (!Ok) {
    // Mid-stream failure (ENOSPC-class): discard the partial run so the
    // on-disk state stays a set of complete sorted runs, and refuse
    // further spills. Already-written runs keep answering probes.
    Out.Map.reset();
    Out.Path.clear();
    std::error_code Ec;
    fs::remove(Path, Ec);
    Failed.store(true, std::memory_order_relaxed);
  }
  return Ok;
}

void SpillStore::rebuildFilter(ShardState &S, const uint64_t *Extra,
                               size_t N) {
  size_t Total = N;
  for (const Run &R : S.Runs)
    Total += R.count();
  S.Filter.reset(Total);
  for (const Run &R : S.Runs)
    for (size_t I = 0, E = R.count(); I < E; ++I)
      S.Filter.insert(R.begin()[I]);
  for (size_t I = 0; I < N; ++I)
    S.Filter.insert(Extra[I]);
}

bool SpillStore::spill(unsigned Shard, const uint64_t *Fps, size_t N) {
  assert(Shard < NumShards);
  if (N == 0)
    return true;
  if (!ok())
    return false;
  ShardState &S = Shards[Shard];
  Run R;
  if (!writeRun(Shard, Fps, N, R))
    return false;
  S.Runs.push_back(std::move(R));
  // Filter update: replay the new fingerprints, or rebuild from the runs
  // when the table would overflow (tags alone cannot rehash; the runs
  // are the durable copy of exactly the spilled set).
  if (S.Filter.needsGrow(N))
    rebuildFilter(S, nullptr, 0); // the new run is already in S.Runs
  else
    for (size_t I = 0; I < N; ++I)
      S.Filter.insert(Fps[I]);
  SpilledStates.fetch_add(N, std::memory_order_relaxed);
  SpillBytes.fetch_add(N * sizeof(uint64_t), std::memory_order_relaxed);
  if (S.Runs.size() >= MaxRunsPerShard)
    (void)mergeShard(Shard); // failure already marked the store
  return true;
}

bool SpillStore::mergeShard(unsigned Shard) {
  ShardState &S = Shards[Shard];
  if (S.Runs.size() < 2)
    return true;
  // Streaming k-way merge with duplicate elimination: the runs are
  // sorted, so one cursor per run and a bounded output buffer keep the
  // merge's RAM footprint constant regardless of shard size.
  char Leaf[32];
  std::snprintf(Leaf, sizeof(Leaf), "s%02u-r%06u.bin", Shard, S.NextSeq++);
  std::string Path = (fs::path(Dir) / Leaf).string();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Failed.store(true, std::memory_order_relaxed);
    return false;
  }
  struct Cursor {
    const uint64_t *At;
    const uint64_t *End;
  };
  std::vector<Cursor> Cur;
  for (const Run &R : S.Runs)
    if (R.count())
      Cur.push_back({R.begin(), R.begin() + R.count()});
  std::vector<uint64_t> Buf;
  Buf.reserve(1 << 13);
  size_t Merged = 0;
  bool Ok = true;
  uint64_t Last = 0;
  bool HaveLast = false;
  auto FlushBuf = [&]() {
    size_t Bytes = Buf.size() * sizeof(uint64_t);
    bool W =
        BytesWritten.fetch_add(Bytes, std::memory_order_relaxed) + Bytes <=
        TestFailAfterBytes;
    W = W && std::fwrite(Buf.data(), sizeof(uint64_t), Buf.size(), F) ==
                 Buf.size();
    Buf.clear();
    return W;
  };
  while (Ok && !Cur.empty()) {
    size_t Min = 0;
    for (size_t I = 1; I < Cur.size(); ++I)
      if (*Cur[I].At < *Cur[Min].At)
        Min = I;
    uint64_t V = *Cur[Min].At++;
    if (Cur[Min].At == Cur[Min].End)
      Cur.erase(Cur.begin() + Min);
    if (HaveLast && V == Last)
      continue; // a fingerprint can appear in several runs; keep one
    Last = V;
    HaveLast = true;
    ++Merged;
    Buf.push_back(V);
    if (Buf.size() == Buf.capacity())
      Ok = FlushBuf();
  }
  Ok = Ok && FlushBuf();
  Ok = std::fclose(F) == 0 && Ok;
  Run NewRun;
  if (Ok) {
    NewRun.Path = Path;
    Ok = NewRun.Map.map(Path) && NewRun.count() == Merged;
  }
  std::error_code Ec;
  if (!Ok) {
    fs::remove(Path, Ec);
    Failed.store(true, std::memory_order_relaxed);
    return false; // the unmerged runs stay valid and keep answering
  }
  for (Run &R : S.Runs) {
    R.Map.reset();
    fs::remove(R.Path, Ec);
  }
  S.Runs.clear();
  S.Runs.push_back(std::move(NewRun));
  RunMerges.fetch_add(1, std::memory_order_relaxed);
  // The merged file replaces the old runs byte-for-byte minus
  // duplicates; SpillBytes tracks live disk bytes.
  uint64_t Live = 0;
  for (unsigned Sh = 0; Sh < NumShards; ++Sh)
    for (const Run &R : Shards[Sh].Runs)
      Live += R.count() * sizeof(uint64_t);
  SpillBytes.store(Live, std::memory_order_relaxed);
  return true;
}

bool SpillStore::contains(unsigned Shard, uint64_t Fp) const {
  const ShardState &S = Shards[Shard];
  if (!S.Filter.mayContain(Fp))
    return false; // definitive: the filter has no false negatives
  for (auto It = S.Runs.rbegin(); It != S.Runs.rend(); ++It) {
    const uint64_t *B = It->begin(), *E = B + It->count();
    const uint64_t *P = std::lower_bound(B, E, Fp);
    if (P != E && *P == Fp)
      return true;
  }
  FilterFalseHits.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void SpillStore::containsBatch(unsigned Shard, const uint64_t *SortedFps,
                               size_t N, uint8_t *Hit) const {
  const ShardState &S = Shards[Shard];
  // Sweep 1: filter words, prefetched across the batch then probed.
  for (size_t I = 0; I < N; ++I)
    S.Filter.prefetch(SortedFps[I]);
  unsigned Pending = 0;
  for (size_t I = 0; I < N; ++I) {
    Hit[I] = S.Filter.mayContain(SortedFps[I]) ? 2 : 0; // 2 = maybe
    Pending += Hit[I] != 0;
  }
  if (Pending == 0)
    return;
  // Sweep 2: each run once, front to back. The lanes are sorted, so
  // lane I's lower_bound starts at lane I-1's landing point — the whole
  // batch costs one monotone walk per run instead of N cold searches.
  for (auto It = S.Runs.rbegin(); It != S.Runs.rend() && Pending; ++It) {
    const uint64_t *B = It->begin(), *E = B + It->count();
    const uint64_t *P = B;
    for (size_t I = 0; I < N; ++I) {
      if (Hit[I] != 2)
        continue;
      P = std::lower_bound(P, E, SortedFps[I]);
      if (P != E)
        It->Map.prefetch((reinterpret_cast<const char *>(P) -
                          static_cast<const char *>(It->Map.data())));
      if (P != E && *P == SortedFps[I]) {
        Hit[I] = 1;
        --Pending;
      }
      if (P == E)
        break; // every later (larger) lane misses this run too
    }
  }
  for (size_t I = 0; I < N; ++I)
    if (Hit[I] == 2) {
      Hit[I] = 0; // the filter said maybe, every run said no
      FilterFalseHits.fetch_add(1, std::memory_order_relaxed);
    }
}

uint64_t SpillStore::filterBytes() const {
  uint64_t B = 0;
  for (const ShardState &S : Shards)
    B += S.Filter.bytes();
  return B;
}
