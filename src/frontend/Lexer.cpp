//===- frontend/Lexer.cpp --------------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/StrUtil.h"

#include <cctype>

using namespace psketch;
using namespace psketch::frontend;

const char *psketch::frontend::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::End: return "end of input";
  case TokenKind::Ident: return "identifier";
  case TokenKind::Number: return "number";
  case TokenKind::String: return "string";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Semi: return "';'";
  case TokenKind::Comma: return "','";
  case TokenKind::Dot: return "'.'";
  case TokenKind::Colon: return "':'";
  case TokenKind::Assign: return "'='";
  case TokenKind::EqEq: return "'=='";
  case TokenKind::NotEq: return "'!='";
  case TokenKind::Less: return "'<'";
  case TokenKind::LessEq: return "'<='";
  case TokenKind::Greater: return "'>'";
  case TokenKind::GreaterEq: return "'>='";
  case TokenKind::AndAnd: return "'&&'";
  case TokenKind::OrOr: return "'||'";
  case TokenKind::Not: return "'!'";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Hole: return "'?" "?'";
  case TokenKind::GenOpen: return "'{|'";
  case TokenKind::GenClose: return "'|}'";
  case TokenKind::Pipe: return "'|'";
  }
  return "?";
}

bool psketch::frontend::tokenize(const std::string &Source,
                                 std::vector<Token> &TokensOut,
                                 std::string &ErrorOut) {
  TokensOut.clear();
  unsigned Line = 1, Column = 1;
  size_t I = 0;
  auto Peek = [&](size_t Ahead = 0) -> char {
    return I + Ahead < Source.size() ? Source[I + Ahead] : '\0';
  };
  auto Advance = [&]() {
    if (Source[I] == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    ++I;
  };
  auto Push = [&](TokenKind Kind, unsigned AtLine, unsigned AtColumn) {
    Token T;
    T.Kind = Kind;
    T.Line = AtLine;
    T.Column = AtColumn;
    TokensOut.push_back(T);
    return &TokensOut.back();
  };

  while (I < Source.size()) {
    char C = Peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance();
      continue;
    }
    // Comments: // to end of line.
    if (C == '/' && Peek(1) == '/') {
      while (I < Source.size() && Peek() != '\n')
        Advance();
      continue;
    }
    unsigned TLine = Line, TColumn = Column;
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text;
      while (std::isalnum(static_cast<unsigned char>(Peek())) ||
             Peek() == '_') {
        Text.push_back(Peek());
        Advance();
      }
      Push(TokenKind::Ident, TLine, TColumn)->Text = std::move(Text);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t Value = 0;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        Value = Value * 10 + (Peek() - '0');
        Advance();
      }
      Push(TokenKind::Number, TLine, TColumn)->Number = Value;
      continue;
    }
    if (C == '"') {
      Advance();
      std::string Text;
      while (I < Source.size() && Peek() != '"') {
        Text.push_back(Peek());
        Advance();
      }
      if (Peek() != '"') {
        ErrorOut = format("%u:%u: unterminated string", TLine, TColumn);
        return false;
      }
      Advance();
      Push(TokenKind::String, TLine, TColumn)->Text = std::move(Text);
      continue;
    }

    auto Two = [&](char A, char B) { return C == A && Peek(1) == B; };
    TokenKind Kind;
    unsigned Width = 2;
    if (Two('?', '?'))
      Kind = TokenKind::Hole;
    else if (Two('{', '|'))
      Kind = TokenKind::GenOpen;
    else if (Two('|', '}'))
      Kind = TokenKind::GenClose;
    else if (Two('=', '='))
      Kind = TokenKind::EqEq;
    else if (Two('!', '='))
      Kind = TokenKind::NotEq;
    else if (Two('<', '='))
      Kind = TokenKind::LessEq;
    else if (Two('>', '='))
      Kind = TokenKind::GreaterEq;
    else if (Two('&', '&'))
      Kind = TokenKind::AndAnd;
    else if (Two('|', '|'))
      Kind = TokenKind::OrOr;
    else {
      Width = 1;
      switch (C) {
      case '{': Kind = TokenKind::LBrace; break;
      case '}': Kind = TokenKind::RBrace; break;
      case '(': Kind = TokenKind::LParen; break;
      case ')': Kind = TokenKind::RParen; break;
      case '[': Kind = TokenKind::LBracket; break;
      case ']': Kind = TokenKind::RBracket; break;
      case ';': Kind = TokenKind::Semi; break;
      case ',': Kind = TokenKind::Comma; break;
      case '.': Kind = TokenKind::Dot; break;
      case ':': Kind = TokenKind::Colon; break;
      case '=': Kind = TokenKind::Assign; break;
      case '<': Kind = TokenKind::Less; break;
      case '>': Kind = TokenKind::Greater; break;
      case '!': Kind = TokenKind::Not; break;
      case '+': Kind = TokenKind::Plus; break;
      case '-': Kind = TokenKind::Minus; break;
      case '|': Kind = TokenKind::Pipe; break;
      default:
        ErrorOut = format("%u:%u: unexpected character '%c'", TLine, TColumn, C);
        return false;
      }
    }
    for (unsigned W = 0; W < Width; ++W)
      Advance();
    Push(Kind, TLine, TColumn);
  }
  Push(TokenKind::End, Line, Column);
  return true;
}
