//===- frontend/Lexer.h - Tokenizing the mini-PSketch language --*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the textual mini-PSketch language (see
/// frontend/Parser.h for the grammar). The interesting tokens are the
/// synthesis constructs: `??` (a primitive hole), `{|` ... `|` ... `|}`
/// (expression generators), and the `reorder` keyword.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_FRONTEND_LEXER_H
#define PSKETCH_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace psketch {
namespace frontend {

enum class TokenKind : uint8_t {
  End,
  Ident,
  Number,
  String,
  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Colon,
  Assign,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AndAnd,
  OrOr,
  Not,
  Plus,
  Minus,
  // Synthesis constructs.
  Hole,     ///< ??
  GenOpen,  ///< {|
  GenClose, ///< |}
  Pipe,     ///< | (inside generators)
};

struct Token {
  TokenKind Kind = TokenKind::End;
  std::string Text;   ///< identifier / string payload
  int64_t Number = 0; ///< numeric payload
  unsigned Line = 1;
  unsigned Column = 1;
};

/// Tokenizes \p Source. On a lexical error, returns false and fills
/// \p ErrorOut with a line/column-tagged message.
bool tokenize(const std::string &Source, std::vector<Token> &TokensOut,
              std::string &ErrorOut);

/// \returns a human-readable token-kind name for diagnostics.
const char *tokenKindName(TokenKind Kind);

} // namespace frontend
} // namespace psketch

#endif // PSKETCH_FRONTEND_LEXER_H
