//===- frontend/Parser.cpp -------------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "support/StrUtil.h"

#include <map>
#include <optional>

using namespace psketch;
using namespace psketch::frontend;
using namespace psketch::ir;

namespace {

/// What a name currently refers to.
struct Binding {
  enum class Kind : uint8_t { Global, Local, ForkConst } BKind;
  unsigned Id = 0;     ///< global id or local slot
  Type Ty = Type::Int; ///< for locals
  int64_t Value = 0;   ///< for fork constants
};

class Parser {
public:
  Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  ParseResult run();

private:
  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::string Error;
  std::unique_ptr<Program> P;

  std::string StructName = "Node";
  std::map<std::string, unsigned> Fields;
  std::map<std::string, Binding> Names; // globals + current body scope
  std::vector<std::string> BodyNames;   // names to drop when a body ends
  BodyId CurBody = BodyId::prologue();

  // Source-position-keyed hole sharing across fork copies.
  std::map<size_t, unsigned> HoleAt;
  std::map<size_t, std::vector<unsigned>> ReorderHolesAt;

  //===--------------------------------------------------------------------===//
  // Token plumbing.
  //===--------------------------------------------------------------------===//

  const Token &peek(size_t Ahead = 0) const {
    size_t I = std::min(Pos + Ahead, Tokens.size() - 1);
    return Tokens[I];
  }
  bool at(TokenKind Kind) const { return peek().Kind == Kind; }
  bool atIdent(const char *Text) const {
    return at(TokenKind::Ident) && peek().Text == Text;
  }
  Token take() { return Tokens[Pos == Tokens.size() - 1 ? Pos : Pos++]; }
  bool accept(TokenKind Kind) {
    if (!at(Kind))
      return false;
    take();
    return true;
  }
  bool acceptIdent(const char *Text) {
    if (!atIdent(Text))
      return false;
    take();
    return true;
  }
  bool expect(TokenKind Kind, const char *Context) {
    if (accept(Kind))
      return true;
    fail(format("expected %s in %s, found %s", tokenKindName(Kind), Context,
                tokenKindName(peek().Kind)));
    return false;
  }
  void fail(const std::string &Message) {
    if (Error.empty())
      Error = format("%u:%u: %s", peek().Line, peek().Column,
                     Message.c_str());
  }
  bool failed() const { return !Error.empty(); }

  //===--------------------------------------------------------------------===//
  // Scope helpers.
  //===--------------------------------------------------------------------===//

  void beginBody(BodyId Id) {
    CurBody = Id;
    BodyNames.clear();
  }
  void endBody() {
    for (const std::string &N : BodyNames)
      Names.erase(N);
    BodyNames.clear();
  }

  unsigned holeAt(size_t Key, const std::string &Name, unsigned Choices) {
    auto It = HoleAt.find(Key);
    if (It != HoleAt.end())
      return It->second;
    unsigned Id = P->addHole(Name, Choices);
    HoleAt.emplace(Key, Id);
    return Id;
  }

  //===--------------------------------------------------------------------===//
  // Grammar.
  //===--------------------------------------------------------------------===//

  std::optional<Type> parseType();
  void parseStruct();
  void parseGlobal();
  void parseThread(const std::string &Name, int64_t ForkValue,
                   const std::string &ForkVar);
  void parseTopLevel();

  StmtRef parseBlock();
  StmtRef parseStmt();
  StmtRef parseAssignment();
  std::vector<Loc> parseLvalOrGenerator();
  Loc parseLval();

  ExprRef parseExpr() { return parseOr(); }
  ExprRef parseOr();
  ExprRef parseAnd();
  ExprRef parseCompare();
  ExprRef parseAdd();
  ExprRef parseUnary();
  ExprRef parsePostfix(ExprRef Base);
  ExprRef parsePrimary();
};

std::optional<Type> Parser::parseType() {
  if (acceptIdent("int"))
    return Type::Int;
  if (acceptIdent("bool"))
    return Type::Bool;
  if (at(TokenKind::Ident) && peek().Text == StructName) {
    take();
    return Type::Ptr;
  }
  return std::nullopt;
}

void Parser::parseStruct() {
  if (!at(TokenKind::Ident)) {
    fail("expected struct name");
    return;
  }
  StructName = take().Text;
  expect(TokenKind::LBrace, "struct");
  while (!failed() && !accept(TokenKind::RBrace)) {
    auto Ty = parseType();
    if (!Ty) {
      fail("expected field type");
      return;
    }
    if (!at(TokenKind::Ident)) {
      fail("expected field name");
      return;
    }
    std::string Name = take().Text;
    expect(TokenKind::Semi, "field declaration");
    Fields[Name] = P->addField(Name, *Ty);
  }
}

void Parser::parseGlobal() {
  auto Ty = parseType();
  if (!Ty) {
    fail("expected global type");
    return;
  }
  if (!at(TokenKind::Ident)) {
    fail("expected global name");
    return;
  }
  std::string Name = take().Text;
  unsigned ArraySize = 0;
  if (accept(TokenKind::LBracket)) {
    if (!at(TokenKind::Number)) {
      fail("expected array size");
      return;
    }
    ArraySize = static_cast<unsigned>(take().Number);
    expect(TokenKind::RBracket, "array declaration");
  }
  int64_t Init = 0;
  if (accept(TokenKind::Assign)) {
    bool Negative = accept(TokenKind::Minus);
    if (!at(TokenKind::Number)) {
      fail("expected numeric initializer");
      return;
    }
    Init = take().Number * (Negative ? -1 : 1);
  }
  expect(TokenKind::Semi, "global declaration");
  unsigned Id = ArraySize == 0
                    ? P->addGlobal(Name, *Ty, Init)
                    : P->addGlobalArray(Name, *Ty, ArraySize, Init);
  Names[Name] = Binding{Binding::Kind::Global, Id, *Ty, 0};
}

ExprRef Parser::parseOr() {
  ExprRef E = parseAnd();
  while (!failed() && accept(TokenKind::OrOr))
    E = P->lor(E, parseAnd());
  return E;
}

ExprRef Parser::parseAnd() {
  ExprRef E = parseCompare();
  while (!failed() && accept(TokenKind::AndAnd))
    E = P->land(E, parseCompare());
  return E;
}

ExprRef Parser::parseCompare() {
  ExprRef E = parseAdd();
  if (failed())
    return E;
  if (accept(TokenKind::EqEq))
    return P->eq(E, parseAdd());
  if (accept(TokenKind::NotEq))
    return P->ne(E, parseAdd());
  if (accept(TokenKind::Less))
    return P->lt(E, parseAdd());
  if (accept(TokenKind::LessEq))
    return P->le(E, parseAdd());
  if (accept(TokenKind::Greater))
    return P->gt(E, parseAdd());
  if (accept(TokenKind::GreaterEq))
    return P->ge(E, parseAdd());
  return E;
}

ExprRef Parser::parseAdd() {
  ExprRef E = parseUnary();
  for (;;) {
    if (failed())
      return E;
    if (accept(TokenKind::Plus))
      E = P->add(E, parseUnary());
    else if (accept(TokenKind::Minus))
      E = P->sub(E, parseUnary());
    else
      return E;
  }
}

ExprRef Parser::parseUnary() {
  if (accept(TokenKind::Not))
    return P->lnot(parseUnary());
  if (accept(TokenKind::Minus))
    return P->sub(P->constInt(0), parseUnary());
  return parsePostfix(parsePrimary());
}

ExprRef Parser::parsePostfix(ExprRef Base) {
  while (!failed() && accept(TokenKind::Dot)) {
    if (!at(TokenKind::Ident)) {
      fail("expected field name after '.'");
      return Base;
    }
    std::string Name = take().Text;
    auto It = Fields.find(Name);
    if (It == Fields.end()) {
      fail("unknown field '" + Name + "'");
      return Base;
    }
    Base = P->field(Base, It->second);
  }
  return Base;
}

ExprRef Parser::parsePrimary() {
  if (failed())
    return P->constInt(0);
  if (at(TokenKind::Number))
    return P->constInt(take().Number);
  if (acceptIdent("null"))
    return P->null();
  if (acceptIdent("true"))
    return P->constBool(true);
  if (acceptIdent("false"))
    return P->constBool(false);
  if (at(TokenKind::Hole)) {
    size_t Key = Pos;
    take();
    unsigned Choices = 16;
    if (accept(TokenKind::LParen)) {
      if (!at(TokenKind::Number)) {
        fail("expected hole range");
        return P->constInt(0);
      }
      Choices = static_cast<unsigned>(take().Number);
      expect(TokenKind::RParen, "hole range");
    }
    unsigned Id = holeAt(Key, format("??@%zu", Key), Choices);
    return P->holeValue(Id);
  }
  if (at(TokenKind::GenOpen)) {
    size_t Key = Pos;
    take();
    std::vector<ExprRef> Alternatives;
    Alternatives.push_back(parseExpr());
    while (!failed() && accept(TokenKind::Pipe))
      Alternatives.push_back(parseExpr());
    expect(TokenKind::GenClose, "expression generator");
    if (failed() || Alternatives.size() == 1)
      return Alternatives[0];
    unsigned Id = holeAt(Key, format("gen@%zu", Key),
                         static_cast<unsigned>(Alternatives.size()));
    return P->choiceOf(Id, std::move(Alternatives));
  }
  if (accept(TokenKind::LParen)) {
    ExprRef E = parseExpr();
    expect(TokenKind::RParen, "parenthesized expression");
    return E;
  }
  if (at(TokenKind::Ident)) {
    std::string Name = take().Text;
    auto It = Names.find(Name);
    if (It == Names.end()) {
      fail("unknown name '" + Name + "'");
      return P->constInt(0);
    }
    const Binding &B = It->second;
    switch (B.BKind) {
    case Binding::Kind::ForkConst:
      return P->constInt(B.Value);
    case Binding::Kind::Local:
      return P->local(B.Id, B.Ty);
    case Binding::Kind::Global:
      if (P->globals()[B.Id].ArraySize > 0) {
        if (!expect(TokenKind::LBracket, "array access"))
          return P->constInt(0);
        ExprRef Index = parseExpr();
        expect(TokenKind::RBracket, "array access");
        return P->globalAt(B.Id, Index);
      }
      return P->global(B.Id);
    }
  }
  fail(format("unexpected %s in expression", tokenKindName(peek().Kind)));
  return P->constInt(0);
}

Loc Parser::parseLval() {
  if (!at(TokenKind::Ident)) {
    fail("expected assignable location");
    return Loc();
  }
  std::string Name = take().Text;
  auto It = Names.find(Name);
  if (It == Names.end()) {
    fail("unknown name '" + Name + "'");
    return Loc();
  }
  const Binding &B = It->second;
  Loc Base;
  ExprRef BaseExpr = nullptr;
  switch (B.BKind) {
  case Binding::Kind::ForkConst:
    fail("cannot assign to the fork index");
    return Loc();
  case Binding::Kind::Local:
    Base = P->locLocal(B.Id);
    BaseExpr = P->local(B.Id, B.Ty);
    break;
  case Binding::Kind::Global:
    if (P->globals()[B.Id].ArraySize > 0) {
      if (!expect(TokenKind::LBracket, "array store"))
        return Loc();
      ExprRef Index = parseExpr();
      expect(TokenKind::RBracket, "array store");
      return P->locGlobalAt(B.Id, Index);
    }
    Base = P->locGlobal(B.Id);
    BaseExpr = P->global(B.Id);
    break;
  }
  // Field chains: everything but the last field is a read.
  while (at(TokenKind::Dot)) {
    take();
    if (!at(TokenKind::Ident)) {
      fail("expected field name after '.'");
      return Loc();
    }
    std::string FieldName = take().Text;
    auto FIt = Fields.find(FieldName);
    if (FIt == Fields.end()) {
      fail("unknown field '" + FieldName + "'");
      return Loc();
    }
    if (at(TokenKind::Dot)) {
      BaseExpr = P->field(BaseExpr, FIt->second);
      continue;
    }
    return P->locField(BaseExpr, FIt->second);
  }
  return Base;
}

std::vector<Loc> Parser::parseLvalOrGenerator() {
  std::vector<Loc> Targets;
  if (accept(TokenKind::GenOpen)) {
    Targets.push_back(parseLval());
    while (!failed() && accept(TokenKind::Pipe))
      Targets.push_back(parseLval());
    expect(TokenKind::GenClose, "location generator");
    return Targets;
  }
  Targets.push_back(parseLval());
  return Targets;
}

StmtRef Parser::parseAssignment() {
  size_t GenKey = Pos; // hole key for a possible l-value generator
  std::vector<Loc> Targets = parseLvalOrGenerator();
  if (failed())
    return P->nop();
  if (!expect(TokenKind::Assign, "assignment"))
    return P->nop();

  // new
  if (acceptIdent("new")) {
    expect(TokenKind::Semi, "allocation");
    if (Targets.size() != 1) {
      fail("'new' needs a single target");
      return P->nop();
    }
    return P->alloc(Targets[0]);
  }
  // AtomicSwap(loc, value)
  if (atIdent("AtomicSwap")) {
    take();
    expect(TokenKind::LParen, "AtomicSwap");
    size_t SwapKey = Pos;
    std::vector<Loc> SwapTargets = parseLvalOrGenerator();
    expect(TokenKind::Comma, "AtomicSwap");
    ExprRef Value = parseExpr();
    expect(TokenKind::RParen, "AtomicSwap");
    expect(TokenKind::Semi, "AtomicSwap");
    if (failed() || Targets.size() != 1) {
      fail("AtomicSwap needs a single result target");
      return P->nop();
    }
    if (SwapTargets.size() == 1)
      return P->swap("", Targets[0], std::move(SwapTargets), Value);
    unsigned Id = holeAt(SwapKey, format("swaploc@%zu", SwapKey),
                         static_cast<unsigned>(SwapTargets.size()));
    return P->swapOf(Id, Targets[0], std::move(SwapTargets), Value);
  }
  // Ordinary assignment.
  ExprRef Value = parseExpr();
  expect(TokenKind::Semi, "assignment");
  if (failed())
    return P->nop();
  if (Targets.size() == 1)
    return P->assign(Targets[0], Value);
  unsigned Id = holeAt(GenKey, format("lvgen@%zu", GenKey),
                       static_cast<unsigned>(Targets.size()));
  return P->choiceAssignOf(Id, std::move(Targets), Value);
}

StmtRef Parser::parseStmt() {
  if (failed())
    return P->nop();

  if (at(TokenKind::LBrace))
    return parseBlock();

  if (acceptIdent("var")) {
    auto Ty = parseType();
    if (!Ty) {
      fail("expected type after 'var'");
      return P->nop();
    }
    if (!at(TokenKind::Ident)) {
      fail("expected variable name");
      return P->nop();
    }
    std::string Name = take().Text;
    StmtRef Init = P->nop();
    unsigned Slot = P->addLocal(CurBody, Name, *Ty, 0);
    Names[Name] = Binding{Binding::Kind::Local, Slot, *Ty, 0};
    BodyNames.push_back(Name);
    if (accept(TokenKind::Assign)) {
      ExprRef Value = parseExpr();
      Init = P->assign(P->locLocal(Slot), Value);
    }
    expect(TokenKind::Semi, "variable declaration");
    return Init;
  }

  if (acceptIdent("if")) {
    expect(TokenKind::LParen, "if");
    ExprRef Cond = parseExpr();
    expect(TokenKind::RParen, "if");
    StmtRef Then = parseStmt();
    StmtRef Else = nullptr;
    if (acceptIdent("else"))
      Else = parseStmt();
    return P->ifS(Cond, Then, Else);
  }

  if (acceptIdent("while")) {
    expect(TokenKind::LParen, "while");
    ExprRef Cond = parseExpr();
    expect(TokenKind::RParen, "while");
    unsigned Bound = P->poolSize() + 2;
    if (acceptIdent("bound")) {
      if (!at(TokenKind::Number)) {
        fail("expected loop bound");
        return P->nop();
      }
      Bound = static_cast<unsigned>(take().Number);
    }
    StmtRef Body = parseStmt();
    return P->whileS(Cond, Body, Bound);
  }

  if (acceptIdent("atomic")) {
    ExprRef Cond = nullptr;
    if (accept(TokenKind::LParen)) {
      Cond = parseExpr();
      expect(TokenKind::RParen, "conditional atomic");
    }
    StmtRef Body = parseStmt();
    return Cond ? P->condAtomic(Cond, Body) : P->atomic(Body);
  }

  if (acceptIdent("wait")) {
    expect(TokenKind::LParen, "wait");
    ExprRef Cond = parseExpr();
    expect(TokenKind::RParen, "wait");
    expect(TokenKind::Semi, "wait");
    return P->condAtomic(Cond, P->nop());
  }

  if (acceptIdent("assert")) {
    ExprRef Cond = parseExpr();
    std::string Label = "assert";
    if (accept(TokenKind::Colon)) {
      if (!at(TokenKind::String)) {
        fail("expected assert label string");
        return P->nop();
      }
      Label = take().Text;
    }
    expect(TokenKind::Semi, "assert");
    return P->assertS(Cond, Label);
  }

  if (atIdent("reorder")) {
    size_t Key = Pos;
    take();
    ReorderEncoding Enc = ReorderEncoding::Quadratic;
    if (acceptIdent("exponential"))
      Enc = ReorderEncoding::Exponential;
    expect(TokenKind::LBrace, "reorder");
    std::vector<StmtRef> Stmts;
    while (!failed() && !accept(TokenKind::RBrace))
      Stmts.push_back(parseStmt());
    auto It = ReorderHolesAt.find(Key);
    if (It == ReorderHolesAt.end())
      It = ReorderHolesAt
               .emplace(Key, P->makeReorderHoles(
                                 format("reorder@%zu", Key),
                                 static_cast<unsigned>(Stmts.size()), Enc))
               .first;
    return P->reorderOf(It->second, std::move(Stmts), Enc);
  }

  return parseAssignment();
}

StmtRef Parser::parseBlock() {
  expect(TokenKind::LBrace, "block");
  std::vector<StmtRef> Stmts;
  while (!failed() && !accept(TokenKind::RBrace))
    Stmts.push_back(parseStmt());
  return P->seq(std::move(Stmts));
}

void Parser::parseThread(const std::string &Name, int64_t ForkValue,
                         const std::string &ForkVar) {
  unsigned Id = P->addThread(Name);
  beginBody(BodyId::thread(Id));
  if (!ForkVar.empty()) {
    Names[ForkVar] = Binding{Binding::Kind::ForkConst, 0, Type::Int,
                             ForkValue};
    BodyNames.push_back(ForkVar);
  }
  P->setRoot(BodyId::thread(Id), parseBlock());
  endBody();
}

void Parser::parseTopLevel() {
  if (acceptIdent("struct")) {
    parseStruct();
    return;
  }
  if (acceptIdent("global")) {
    parseGlobal();
    return;
  }
  if (acceptIdent("pool")) {
    if (!at(TokenKind::Number)) {
      fail("expected pool size");
      return;
    }
    P->setPoolSize(static_cast<unsigned>(take().Number));
    expect(TokenKind::Semi, "pool directive");
    return;
  }
  if (acceptIdent("prologue")) {
    beginBody(BodyId::prologue());
    P->setRoot(BodyId::prologue(), parseBlock());
    endBody();
    return;
  }
  if (acceptIdent("epilogue")) {
    beginBody(BodyId::epilogue());
    P->setRoot(BodyId::epilogue(), parseBlock());
    endBody();
    return;
  }
  if (acceptIdent("thread")) {
    if (!at(TokenKind::Ident)) {
      fail("expected thread name");
      return;
    }
    std::string Name = take().Text;
    parseThread(Name, 0, "");
    return;
  }
  if (acceptIdent("fork")) {
    expect(TokenKind::LParen, "fork");
    if (!at(TokenKind::Ident)) {
      fail("expected fork index variable");
      return;
    }
    std::string Var = take().Text;
    expect(TokenKind::Comma, "fork");
    if (!at(TokenKind::Number)) {
      fail("expected fork thread count");
      return;
    }
    int64_t Count = take().Number;
    expect(TokenKind::RParen, "fork");
    // Replay the same block once per thread; position-keyed holes make
    // the copies share one sketch.
    size_t BlockStart = Pos;
    for (int64_t I = 0; I < Count && !failed(); ++I) {
      Pos = BlockStart;
      parseThread(format("fork%lld", static_cast<long long>(I)), I, Var);
    }
    return;
  }
  fail(format("unexpected %s at top level", tokenKindName(peek().Kind)));
}

ParseResult Parser::run() {
  P = std::make_unique<Program>();
  while (!failed() && !at(TokenKind::End))
    parseTopLevel();
  ParseResult R;
  if (failed()) {
    R.Error = Error;
    return R;
  }
  R.Program = std::move(P);
  return R;
}

} // namespace

ParseResult psketch::frontend::parseProgram(const std::string &Source) {
  std::vector<Token> Tokens;
  std::string LexError;
  if (!tokenize(Source, Tokens, LexError)) {
    ParseResult R;
    R.Error = LexError;
    return R;
  }
  Parser Par(std::move(Tokens));
  return Par.run();
}
