//===- frontend/Parser.h - The textual mini-PSketch language ----*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent frontend for a textual rendering of the PSKETCH
/// language, lowering directly into the sketch IR:
///
/// \code
///   pool 4;                       // node-pool capacity
///   struct Node { Node next; int stored; int taken; }
///   global Node tail;             // scalar and array globals
///   global int res[2];
///
///   prologue { ... }              // sequential setup
///   thread producer { ... }       // one explicit thread
///   fork (i, 3) { ... }           // N copies; i is a per-copy constant
///   epilogue { assert res[0] == 1 : "spec"; }
/// \endcode
///
/// Statements: `var`, assignment, `if`/`else`, bounded `while (c) bound N`,
/// `atomic`, conditional `atomic (c)`, `wait (c);`, `assert e : "msg";`,
/// `reorder { ... }` (optionally `reorder exponential`), blocks, `new`,
/// and `x = AtomicSwap(loc, value);`.
///
/// Synthesis constructs: `??(k)` is a primitive hole over [0, k);
/// `{| e1 | e2 | ... |}` is an expression generator usable as an r-value
/// or (over l-values) as an assignment/swap target; `reorder` blocks.
/// Holes are keyed by source position, so the bodies replicated by
/// `fork` share one set of holes — the sketch is resolved once, exactly
/// like the builder API's shared-hole constructs.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_FRONTEND_PARSER_H
#define PSKETCH_FRONTEND_PARSER_H

#include "ir/Program.h"

#include <memory>
#include <string>

namespace psketch {
namespace frontend {

/// Outcome of parsing: a program, or a diagnostic.
struct ParseResult {
  std::unique_ptr<ir::Program> Program;
  std::string Error; ///< non-empty iff Program is null

  bool ok() const { return Program != nullptr; }
};

/// Parses mini-PSketch source text into a Program.
ParseResult parseProgram(const std::string &Source);

} // namespace frontend
} // namespace psketch

#endif // PSKETCH_FRONTEND_PARSER_H
