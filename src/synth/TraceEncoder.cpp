//===- synth/TraceEncoder.cpp ----------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "synth/TraceEncoder.h"

#include "support/StrUtil.h"

#include <cassert>

using namespace psketch;
using namespace psketch::synth;
using namespace psketch::circuit;
using namespace psketch::ir;
using psketch::flat::MicroOp;
using psketch::flat::Step;

TraceEncoder::TraceEncoder(Graph &G, const flat::FlatProgram &FP)
    : G(G), FP(FP), P(*FP.Source) {
  assert(P.widthOf(Type::Ptr) <= P.intWidth() &&
         "pointer width must not exceed the int width");
  HoleBits.reserve(P.holes().size());
  for (size_t I = 0; I < P.holes().size(); ++I)
    HoleBits.push_back(
        bvInput(G, P.holes()[I].Width, format("hole%zu", I)));
  GlobalOffsets.reserve(P.globals().size());
  for (const Global &Gl : P.globals()) {
    GlobalOffsets.push_back(NumGlobalSlots);
    NumGlobalSlots += Gl.ArraySize == 0 ? 1 : Gl.ArraySize;
  }
}

NodeRef TraceEncoder::validity() {
  std::vector<NodeRef> Terms;
  for (size_t I = 0; I < P.holes().size(); ++I) {
    unsigned Width = P.holes()[I].Width;
    unsigned NumChoices = P.holes()[I].NumChoices;
    if (NumChoices == (1u << Width))
      continue; // the hole's bit pattern range is exactly its choice range
    Terms.push_back(
        bvUlt(G, HoleBits[I], bvConst(G, Width, NumChoices)));
  }
  // Static hole-only constraints (e.g. reorder no-duplicates): evaluate
  // them with a throwaway state — they read no program state.
  SymState Empty = initialState({});
  for (ExprRef C : P.staticConstraints()) {
    Val V = evalExpr(Empty, 0, C);
    Terms.push_back(bit(V));
  }
  return G.mkAndAll(Terms);
}

NodeRef TraceEncoder::encodeHoleOnly(ExprRef E) {
  SymState Empty = initialState({});
  Val V = evalExpr(Empty, 0, E);
  return bit(V);
}

TraceEncoder::SymState TraceEncoder::initialState(
    const GlobalOverrides &Overrides) {
  SymState St;
  St.Globals.resize(NumGlobalSlots);
  for (size_t I = 0; I < P.globals().size(); ++I) {
    const Global &Gl = P.globals()[I];
    unsigned Count = Gl.ArraySize == 0 ? 1 : Gl.ArraySize;
    for (unsigned J = 0; J < Count; ++J)
      St.Globals[GlobalOffsets[I] + J] =
          bvConst(G, widthOf(Gl.Ty), static_cast<uint64_t>(Gl.Init));
  }
  for (const auto &[Id, Value] : Overrides) {
    assert(P.globals()[Id].ArraySize == 0 && "override of array global");
    St.Globals[GlobalOffsets[Id]] =
        bvConst(G, widthOf(P.globals()[Id].Ty),
                static_cast<uint64_t>(P.wrap(Value, P.globals()[Id].Ty)));
  }
  unsigned FieldW = 0; // computed per field below
  (void)FieldW;
  St.Heap.resize(static_cast<size_t>(P.poolSize()) * P.fields().size());
  for (unsigned N = 0; N < P.poolSize(); ++N)
    for (size_t F = 0; F < P.fields().size(); ++F)
      St.Heap[static_cast<size_t>(N) * P.fields().size() + F] =
          bvConst(G, widthOf(P.fields()[F].Ty), 0);
  St.AllocCount = bvConst(G, widthOf(Type::Ptr), 0);

  unsigned NumCtx = static_cast<unsigned>(FP.Threads.size()) + 2;
  St.Locals.resize(NumCtx);
  auto InitLocals = [&](unsigned Ctx, BodyId Id) {
    const Body &B = P.body(Id);
    St.Locals[Ctx].reserve(B.Locals.size());
    for (const Local &L : B.Locals)
      St.Locals[Ctx].push_back(
          bvConst(G, widthOf(L.Ty), static_cast<uint64_t>(L.Init)));
  };
  for (unsigned T = 0; T < FP.Threads.size(); ++T)
    InitLocals(T, BodyId::thread(T));
  InitLocals(static_cast<unsigned>(FP.Threads.size()), BodyId::prologue());
  InitLocals(static_cast<unsigned>(FP.Threads.size()) + 1,
             BodyId::epilogue());

  St.Alive = G.getTrue();
  St.Fail = G.getFalse();
  return St;
}

//===----------------------------------------------------------------------===//
// Expression evaluation.
//===----------------------------------------------------------------------===//

TraceEncoder::Val TraceEncoder::evalExpr(SymState &St, unsigned Ctx,
                                         ExprRef E) {
  switch (E->Kind) {
  case ExprKind::ConstInt:
    return Val{bvConst(G, widthOf(E->Ty), static_cast<uint64_t>(E->IntValue)),
               G.getTrue()};
  case ExprKind::GlobalRead:
    return Val{St.Globals[GlobalOffsets[E->Id]], G.getTrue()};
  case ExprKind::GlobalArrayRead: {
    Val Index = evalExpr(St, Ctx, E->Ops[0]);
    const Global &Gl = P.globals()[E->Id];
    BitVec Value = bvConst(G, widthOf(Gl.Ty), 0);
    NodeRef InRange = G.getFalse();
    for (unsigned J = 0; J < Gl.ArraySize; ++J) {
      NodeRef Here = bvEqConst(G, Index.V, J);
      Value = bvMux(G, Here, St.Globals[GlobalOffsets[E->Id] + J], Value);
      InRange = G.mkOr(InRange, Here);
    }
    return Val{Value, G.mkAnd(Index.Safe, InRange)};
  }
  case ExprKind::LocalRead:
    return Val{St.Locals[Ctx][E->Id], G.getTrue()};
  case ExprKind::FieldRead: {
    Val Ptr = evalExpr(St, Ctx, E->Ops[0]);
    BitVec Value = bvConst(G, widthOf(P.fields()[E->Id].Ty), 0);
    NodeRef InRange = G.getFalse();
    for (unsigned N = 1; N <= P.poolSize(); ++N) {
      NodeRef Here = bvEqConst(G, Ptr.V, N);
      Value = bvMux(
          G, Here,
          St.Heap[static_cast<size_t>(N - 1) * P.fields().size() + E->Id],
          Value);
      InRange = G.mkOr(InRange, Here);
    }
    return Val{Value, G.mkAnd(Ptr.Safe, InRange)};
  }
  case ExprKind::HoleRead:
    // Hole values are small non-negative ints; widen to the Int width.
    return Val{bvResize(G, HoleBits[E->Id], widthOf(Type::Int)), G.getTrue()};
  case ExprKind::Choice: {
    const BitVec &Sel = HoleBits[E->Id];
    Val Result = evalExpr(St, Ctx, E->Ops.back());
    for (size_t J = E->Ops.size() - 1; J-- > 0;) {
      Val Alt = evalExpr(St, Ctx, E->Ops[J]);
      NodeRef Here = bvEqConst(G, Sel, J);
      Result.V = bvMux(G, Here, Alt.V, Result.V);
      Result.Safe = G.mkIte(Here, Alt.Safe, Result.Safe);
    }
    return Result;
  }
  case ExprKind::And: {
    Val A = evalExpr(St, Ctx, E->Ops[0]);
    Val B = evalExpr(St, Ctx, E->Ops[1]);
    NodeRef ABit = bit(A);
    // Short-circuit safety: the right side only evaluates when A holds.
    NodeRef Safe = G.mkAnd(A.Safe, G.mkOr(~ABit, B.Safe));
    BitVec V;
    V.Bits.push_back(G.mkAnd(ABit, bit(B)));
    return Val{V, Safe};
  }
  case ExprKind::Or: {
    Val A = evalExpr(St, Ctx, E->Ops[0]);
    Val B = evalExpr(St, Ctx, E->Ops[1]);
    NodeRef ABit = bit(A);
    NodeRef Safe = G.mkAnd(A.Safe, G.mkOr(ABit, B.Safe));
    BitVec V;
    V.Bits.push_back(G.mkOr(ABit, bit(B)));
    return Val{V, Safe};
  }
  case ExprKind::Not: {
    Val A = evalExpr(St, Ctx, E->Ops[0]);
    BitVec V;
    V.Bits.push_back(~bit(A));
    return Val{V, A.Safe};
  }
  case ExprKind::Ite: {
    Val C = evalExpr(St, Ctx, E->Ops[0]);
    Val T = evalExpr(St, Ctx, E->Ops[1]);
    Val F = evalExpr(St, Ctx, E->Ops[2]);
    NodeRef CBit = bit(C);
    NodeRef Safe = G.mkAnd(C.Safe, G.mkIte(CBit, T.Safe, F.Safe));
    return Val{bvMux(G, CBit, T.V, F.V), Safe};
  }
  default:
    break;
  }

  Val A = evalExpr(St, Ctx, E->Ops[0]);
  Val B = evalExpr(St, Ctx, E->Ops[1]);
  NodeRef Safe = G.mkAnd(A.Safe, B.Safe);
  unsigned W = std::max(A.V.width(), B.V.width());
  BitVec AV = bvResize(G, A.V, W);
  BitVec BV = bvResize(G, B.V, W);
  switch (E->Kind) {
  case ExprKind::Add:
    return Val{bvResize(G, bvAdd(G, AV, BV), widthOf(E->Ty)), Safe};
  case ExprKind::Sub:
    return Val{bvResize(G, bvSub(G, AV, BV), widthOf(E->Ty)), Safe};
  case ExprKind::Eq: {
    BitVec V;
    V.Bits.push_back(bvEq(G, AV, BV));
    return Val{V, Safe};
  }
  case ExprKind::Ne: {
    BitVec V;
    V.Bits.push_back(bvNe(G, AV, BV));
    return Val{V, Safe};
  }
  case ExprKind::Lt: {
    assert(A.V.width() == B.V.width() && "signed compare needs equal widths");
    BitVec V;
    V.Bits.push_back(bvSlt(G, AV, BV));
    return Val{V, Safe};
  }
  case ExprKind::Le: {
    assert(A.V.width() == B.V.width() && "signed compare needs equal widths");
    BitVec V;
    V.Bits.push_back(bvSle(G, AV, BV));
    return Val{V, Safe};
  }
  default:
    assert(false && "unhandled expression kind");
    return Val{bvConst(G, 1, 0), G.getTrue()};
  }
}

NodeRef TraceEncoder::store(SymState &St, unsigned Ctx, const Loc &L,
                            NodeRef Cond, const BitVec &Value) {
  switch (L.LocKind) {
  case Loc::Kind::Global: {
    BitVec V = bvResize(G, Value, widthOf(P.globals()[L.Id].Ty));
    St.Globals[GlobalOffsets[L.Id]] =
        bvMux(G, Cond, V, St.Globals[GlobalOffsets[L.Id]]);
    return G.getTrue();
  }
  case Loc::Kind::Local: {
    Type Ty;
    if (Ctx < FP.Threads.size())
      Ty = P.body(BodyId::thread(Ctx)).Locals[L.Id].Ty;
    else if (Ctx == FP.Threads.size())
      Ty = P.body(BodyId::prologue()).Locals[L.Id].Ty;
    else
      Ty = P.body(BodyId::epilogue()).Locals[L.Id].Ty;
    BitVec V = bvResize(G, Value, widthOf(Ty));
    St.Locals[Ctx][L.Id] = bvMux(G, Cond, V, St.Locals[Ctx][L.Id]);
    return G.getTrue();
  }
  case Loc::Kind::GlobalArray: {
    Val Index = evalExpr(St, Ctx, L.Index);
    const Global &Gl = P.globals()[L.Id];
    BitVec V = bvResize(G, Value, widthOf(Gl.Ty));
    NodeRef InRange = G.getFalse();
    for (unsigned J = 0; J < Gl.ArraySize; ++J) {
      NodeRef Here = G.mkAnd(Cond, bvEqConst(G, Index.V, J));
      unsigned Slot = GlobalOffsets[L.Id] + J;
      St.Globals[Slot] = bvMux(G, Here, V, St.Globals[Slot]);
      InRange = G.mkOr(InRange, bvEqConst(G, Index.V, J));
    }
    return G.mkAnd(Index.Safe, InRange);
  }
  case Loc::Kind::Field: {
    Val Ptr = evalExpr(St, Ctx, L.Index);
    BitVec V = bvResize(G, Value, widthOf(P.fields()[L.Id].Ty));
    NodeRef InRange = G.getFalse();
    for (unsigned N = 1; N <= P.poolSize(); ++N) {
      NodeRef Here = G.mkAnd(Cond, bvEqConst(G, Ptr.V, N));
      size_t Slot = static_cast<size_t>(N - 1) * P.fields().size() + L.Id;
      St.Heap[Slot] = bvMux(G, Here, V, St.Heap[Slot]);
      InRange = G.mkOr(InRange, bvEqConst(G, Ptr.V, N));
    }
    return G.mkAnd(Ptr.Safe, InRange);
  }
  }
  __builtin_unreachable();
}

//===----------------------------------------------------------------------===//
// Step encoding.
//===----------------------------------------------------------------------===//

void TraceEncoder::execOps(SymState &St, unsigned Ctx, const Step &Step,
                           NodeRef Eff) {
  for (const MicroOp &Op : Step.Ops) {
    NodeRef Cond = Eff;
    if (Op.Pred) {
      Val Pred = evalExpr(St, Ctx, Op.Pred);
      St.Fail = G.mkOr(St.Fail, G.mkAnd(Eff, ~Pred.Safe));
      Cond = G.mkAnd(Eff, bit(Pred));
    }
    switch (Op.OpKind) {
    case MicroOp::Kind::Write: {
      Val Value = evalExpr(St, Ctx, Op.Value);
      St.Fail = G.mkOr(St.Fail, G.mkAnd(Cond, ~Value.Safe));
      NodeRef AddrSafe = store(St, Ctx, Op.Target, Cond, Value.V);
      St.Fail = G.mkOr(St.Fail, G.mkAnd(Cond, ~AddrSafe));
      break;
    }
    case MicroOp::Kind::Assert: {
      Val CondV = evalExpr(St, Ctx, Op.Value);
      NodeRef Bad = G.mkOr(~CondV.Safe, ~bit(CondV));
      St.Fail = G.mkOr(St.Fail, G.mkAnd(Cond, Bad));
      break;
    }
    case MicroOp::Kind::Alloc: {
      NodeRef HasRoom =
          bvUlt(G, St.AllocCount,
                bvConst(G, St.AllocCount.width(), P.poolSize()));
      St.Fail = G.mkOr(St.Fail, G.mkAnd(Cond, ~HasRoom));
      BitVec NewNode = bvAdd(G, St.AllocCount,
                             bvConst(G, St.AllocCount.width(), 1));
      NodeRef AddrSafe = store(St, Ctx, Op.Target, Cond, NewNode);
      St.Fail = G.mkOr(St.Fail, G.mkAnd(Cond, ~AddrSafe));
      St.AllocCount = bvMux(G, Cond, NewNode, St.AllocCount);
      break;
    }
    }
  }
}

NodeRef TraceEncoder::othersCanProgress(SymState &St, const ProjectedTrace &PT,
                                        size_t Pos) {
  unsigned Self = PT.Sequence[Pos].Thread;
  std::vector<NodeRef> Terms;
  for (unsigned T = 0; T < FP.Threads.size(); ++T) {
    if (T == Self)
      continue;
    // Find thread T's next pending projected step.
    const Step *Next = nullptr;
    for (size_t Q = Pos + 1; Q < PT.Sequence.size(); ++Q) {
      if (PT.Sequence[Q].Thread == T) {
        Next = &FP.Threads[T].Steps[PT.Sequence[Q].Pc];
        break;
      }
    }
    if (!Next) {
      // No pending step: a fully projected thread has truly finished and
      // cannot progress; a truncated thread still has (dropped) work, so
      // it conservatively counts as able to progress.
      if (PT.Truncated[T])
        Terms.push_back(G.getTrue());
      continue;
    }
    // Thread T can progress unless its next step is an enabled blocked
    // conditional atomic: stuck = guard && hasWait && !wait.
    NodeRef Guard = G.getTrue();
    if (Next->StaticGuard)
      Guard = G.mkAnd(Guard, bit(evalExpr(St, T, Next->StaticGuard)));
    if (Next->DynGuard)
      Guard = G.mkAnd(Guard, bit(evalExpr(St, T, Next->DynGuard)));
    if (!Next->WaitCond) {
      Terms.push_back(G.getTrue()); // always runnable
      continue;
    }
    NodeRef Wait = bit(evalExpr(St, T, Next->WaitCond));
    NodeRef Stuck = G.mkAnd(Guard, ~Wait);
    Terms.push_back(~Stuck);
  }
  return G.mkOrAll(Terms);
}

void TraceEncoder::encodeStep(SymState &St, unsigned Ctx, const Step &Step,
                              NodeRef OthersProgress) {
  NodeRef Guard = St.Alive;
  if (Step.StaticGuard)
    Guard = G.mkAnd(Guard, bit(evalExpr(St, Ctx, Step.StaticGuard)));
  if (Step.DynGuard)
    Guard = G.mkAnd(Guard, bit(evalExpr(St, Ctx, Step.DynGuard)));

  NodeRef Eff = Guard;
  if (Step.WaitCond) {
    Val Wait = evalExpr(St, Ctx, Step.WaitCond);
    St.Fail = G.mkOr(St.Fail, G.mkAnd(Guard, ~Wait.Safe));
    NodeRef Blocked = G.mkAnd(Guard, ~bit(Wait));
    // The paper's encoding: blocked and nobody else can move => deadlock;
    // blocked but someone can move => the trace ends with outcome OK.
    St.Fail = G.mkOr(St.Fail, G.mkAnd(Blocked, ~OthersProgress));
    St.Alive = G.mkAnd(St.Alive, ~Blocked);
    Eff = G.mkAnd(Guard, bit(Wait));
  }
  execOps(St, Ctx, Step, Eff);
}

NodeRef TraceEncoder::encodeTrace(const ProjectedTrace &PT,
                                  const GlobalOverrides &Overrides) {
  SymState St = initialState(Overrides);
  unsigned PrologueCtx = static_cast<unsigned>(FP.Threads.size());
  unsigned EpilogueCtx = PrologueCtx + 1;

  for (const Step &S : FP.Prologue.Steps)
    encodeStep(St, PrologueCtx, S, G.getFalse());

  for (size_t Pos = 0; Pos < PT.Sequence.size(); ++Pos) {
    const verify::TraceStep &TS = PT.Sequence[Pos];
    const Step &S = FP.Threads[TS.Thread].Steps[TS.Pc];
    NodeRef Progress =
        S.WaitCond ? othersCanProgress(St, PT, Pos) : G.getFalse();
    encodeStep(St, TS.Thread, S, Progress);
  }

  if (PT.IncludeEpilogue)
    for (const Step &S : FP.Epilogue.Steps)
      encodeStep(St, EpilogueCtx, S, G.getFalse());

  return St.Fail;
}
