//===- synth/Projection.h - Projecting traces onto the space ----*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's key technical device (Section 6): turning a counterexample
/// trace — which is specific to one candidate — into an observation valid
/// for the *whole* candidate space. The projection is a single total order
/// over all statements of all threads that
///
///  (i)  preserves the order of the steps that appear in the trace,
///  (ii) preserves per-thread program order (steps the failing candidate
///       skipped statically are slotted in at their program-order
///       position), and
///  (iii) for deadlock traces, places the deadlock set's steps after every
///       other step and truncates there (the "longest projectable prefix"
///       rule: successors of a blocked step cannot be ordered
///       consistently, so they are dropped).
///
/// Because the result respects program order, it is a legal interleaving
/// of every candidate — evaluating it symbolically can only eliminate
/// genuinely bad candidates.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_PROJECTION_H
#define PSKETCH_SYNTH_PROJECTION_H

#include "desugar/Flat.h"
#include "verify/Trace.h"

#include <vector>

namespace psketch {
namespace synth {

/// A projected trace: the parallel-phase total order plus bookkeeping the
/// symbolic encoder needs.
struct ProjectedTrace {
  /// The ordered parallel-phase steps (thread, pc).
  std::vector<verify::TraceStep> Sequence;

  /// True when the epilogue should be evaluated after the sequence — only
  /// legal when every thread's full body is present (non-deadlock traces).
  bool IncludeEpilogue = true;

  /// Per thread: true if the projection dropped a suffix of its body
  /// (deadlock truncation). A thread with dropped steps and no pending
  /// projected step must be treated as "able to make progress" in the
  /// deadlock check, otherwise correct candidates could be eliminated.
  std::vector<bool> Truncated;

  /// Index of the first deadlock-set step in Sequence (Sequence.size() if
  /// none).
  size_t DeadlockStart = 0;
};

/// Builds the projection of \p Cex onto the candidate space of \p FP.
ProjectedTrace projectTrace(const flat::FlatProgram &FP,
                            const verify::Counterexample &Cex);

/// Builds the trivial projection containing every step of every thread in
/// program order (thread 0 first). Used by the sequential (`implements`)
/// CEGIS mode and by prologue-failure counterexamples.
ProjectedTrace fullProgramOrder(const flat::FlatProgram &FP);

} // namespace synth
} // namespace psketch

#endif // PSKETCH_SYNTH_PROJECTION_H
