//===- synth/TraceEncoder.h - Symbolic evaluation of traces -----*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds Sk_t[c]: the symbolic evaluation of a projected trace over the
/// hole bits, producing `fail(Sk_t[c])` as a single circuit node. The
/// inductive synthesizer asserts its negation, so the SAT solver searches
/// only among candidates that survive every observation (Section 6).
///
/// The semantics mirror exec::Machine bit for bit: W-bit wrapped
/// arithmetic, bounded node pool with mux-tree loads/stores, implicit
/// memory-safety and pool-exhaustion failures, loop-bound asserts, and the
/// paper's conditional-atomic encoding —
///
///   if (c) s;
///   else if (some other thread can make progress) return OK;
///   else assert 0; // deadlock
///
/// where "can make progress" inspects the next pending projected step of
/// each other thread in the current symbolic state, and a thread whose
/// suffix was truncated by deadlock projection conservatively counts as
/// able to progress (see synth/Projection.h).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_TRACEENCODER_H
#define PSKETCH_SYNTH_TRACEENCODER_H

#include "circuit/BitVec.h"
#include "circuit/Graph.h"
#include "desugar/Flat.h"
#include "synth/Projection.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace psketch {
namespace synth {

/// Overrides for initial scalar-global values, used by the sequential
/// (`implements`) CEGIS mode to pin counterexample inputs and expected
/// outputs. Pairs of (global id, value).
using GlobalOverrides = std::vector<std::pair<unsigned, int64_t>>;

/// Encodes projected traces of one flat program into a shared gate graph.
/// Hole bit inputs are created once at construction and shared by every
/// trace, so their SAT variables stay stable across CEGIS iterations.
class TraceEncoder {
public:
  TraceEncoder(circuit::Graph &G, const flat::FlatProgram &FP);

  /// The hole value bitvectors, indexed by hole id.
  const std::vector<circuit::BitVec> &holeBits() const { return HoleBits; }

  /// \returns the conjunction of hole range constraints (value <
  /// NumChoices) and the program's static constraints (e.g. reorder
  /// no-duplicates). Must be asserted once per solver.
  circuit::NodeRef validity();

  /// Symbolically evaluates the projected trace (prologue, sequence,
  /// optionally epilogue). \returns the fail(Sk_t[c]) node.
  circuit::NodeRef encodeTrace(const ProjectedTrace &PT,
                               const GlobalOverrides &Overrides = {});

  /// Symbolically evaluates a hole-only expression (e.g. a static
  /// analyzer exclusion constraint) over the hole bits. \returns its
  /// boolean node.
  circuit::NodeRef encodeHoleOnly(ir::ExprRef E);

private:
  circuit::Graph &G;
  const flat::FlatProgram &FP;
  const ir::Program &P;

  std::vector<circuit::BitVec> HoleBits;
  std::vector<unsigned> GlobalOffsets;
  unsigned NumGlobalSlots = 0;

  /// Symbolic machine state during one trace encoding.
  struct SymState {
    std::vector<circuit::BitVec> Globals;
    std::vector<circuit::BitVec> Heap;
    circuit::BitVec AllocCount;
    std::vector<std::vector<circuit::BitVec>> Locals; // per context
    circuit::NodeRef Alive;
    circuit::NodeRef Fail;
  };

  /// An evaluated expression: its value and "evaluation was memory-safe".
  struct Val {
    circuit::BitVec V;
    circuit::NodeRef Safe;
  };

  unsigned widthOf(ir::Type Ty) const { return P.widthOf(Ty); }
  circuit::NodeRef bit(const Val &B) { return circuit::bvNonZero(G, B.V); }

  SymState initialState(const GlobalOverrides &Overrides);
  Val evalExpr(SymState &St, unsigned Ctx, ir::ExprRef E);
  /// Stores \p Value into \p L when \p Cond holds; \returns the address
  /// safety condition.
  circuit::NodeRef store(SymState &St, unsigned Ctx, const ir::Loc &L,
                         circuit::NodeRef Cond, const circuit::BitVec &Value);
  void execOps(SymState &St, unsigned Ctx, const flat::Step &Step,
               circuit::NodeRef Eff);
  void encodeStep(SymState &St, unsigned Ctx, const flat::Step &Step,
                  circuit::NodeRef OthersProgress);
  /// "Some other thread can make progress" at position \p Pos of \p PT.
  circuit::NodeRef othersCanProgress(SymState &St, const ProjectedTrace &PT,
                                     size_t Pos);
};

} // namespace synth
} // namespace psketch

#endif // PSKETCH_SYNTH_TRACEENCODER_H
