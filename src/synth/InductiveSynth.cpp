//===- synth/InductiveSynth.cpp --------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "synth/InductiveSynth.h"

#include "support/Timer.h"

using namespace psketch;
using namespace psketch::synth;
using circuit::BitVec;
using circuit::NodeRef;

InductiveSynth::InductiveSynth(const flat::FlatProgram &FP)
    : FP(FP), Cnf(Graph, Solver), Encoder(Graph, FP) {
  WallTimer Watch;
  Cnf.assertTrue(Encoder.validity());
  Stats.ModelSeconds += Watch.seconds();
}

void InductiveSynth::addTrace(const verify::Counterexample &Cex) {
  WallTimer Watch;
  ProjectedTrace PT = projectTrace(FP, Cex);
  if (Cex.Where == verify::Counterexample::Phase::Prologue)
    PT = fullProgramOrder(FP);
  NodeRef Fail = Encoder.encodeTrace(PT);
  Cnf.assertFalse(Fail);
  ++Stats.Observations;
  Stats.ModelSeconds += Watch.seconds();
  Stats.GateCount = Graph.numNodes();
  Stats.ClauseCount = Solver.numClauses();
}

void InductiveSynth::addInputObservation(const GlobalOverrides &Overrides) {
  WallTimer Watch;
  ProjectedTrace PT = fullProgramOrder(FP);
  NodeRef Fail = Encoder.encodeTrace(PT, Overrides);
  Cnf.assertFalse(Fail);
  ++Stats.Observations;
  Stats.ModelSeconds += Watch.seconds();
  Stats.GateCount = Graph.numNodes();
  Stats.ClauseCount = Solver.numClauses();
}

bool InductiveSynth::solve(ir::HoleAssignment &CandidateOut) {
  WallTimer Watch;
  bool Sat = Solver.solve();
  Stats.SolveSeconds += Watch.seconds();
  if (!Sat)
    return false;

  const std::vector<BitVec> &Holes = Encoder.holeBits();
  CandidateOut.assign(Holes.size(), 0);
  for (size_t I = 0; I < Holes.size(); ++I) {
    uint64_t Value = 0;
    for (unsigned B = 0; B < Holes[I].width(); ++B) {
      sat::Lit L = Cnf.litFor(Holes[I].bit(B));
      if (Solver.modelValue(L) == sat::LBool::True)
        Value |= (1ull << B);
    }
    CandidateOut[I] = Value;
  }
  return true;
}

void InductiveSynth::banHoleValue(unsigned HoleId, uint64_t Value) {
  WallTimer Watch;
  Cnf.assertFalse(bvEqConst(Graph, Encoder.holeBits()[HoleId], Value));
  Stats.ModelSeconds += Watch.seconds();
}

void InductiveSynth::assertHoleConstraint(ir::ExprRef Constraint) {
  WallTimer Watch;
  Cnf.assertTrue(Encoder.encodeHoleOnly(Constraint));
  Stats.ModelSeconds += Watch.seconds();
}

void InductiveSynth::excludeCandidate(const ir::HoleAssignment &Candidate) {
  WallTimer Watch;
  const std::vector<BitVec> &Holes = Encoder.holeBits();
  std::vector<NodeRef> Equalities;
  for (size_t I = 0; I < Holes.size() && I < Candidate.size(); ++I)
    Equalities.push_back(bvEqConst(Graph, Holes[I], Candidate[I]));
  Cnf.assertFalse(Graph.mkAndAll(Equalities));
  Stats.ModelSeconds += Watch.seconds();
}
