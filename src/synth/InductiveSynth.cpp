//===- synth/InductiveSynth.cpp --------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "synth/InductiveSynth.h"

#include "sat/Dimacs.h"
#include "support/StrUtil.h"
#include "support/Timer.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

using namespace psketch;
using namespace psketch::synth;
using circuit::BitVec;
using circuit::NodeRef;

bool psketch::synth::defaultWarmStart() {
  static const bool Default = [] {
    const char *Env = std::getenv("PSKETCH_WARM_START");
    if (Env != nullptr &&
        (std::strcmp(Env, "0") == 0 || std::strcmp(Env, "off") == 0))
      return false;
    return true;
  }();
  return Default;
}

InductiveSynth::InductiveSynth(const flat::FlatProgram &FP, SynthOptions Opts)
    : FP(FP), Cnf(Graph, Solver), Encoder(Graph, FP), Opts(Opts) {
  WallTimer Watch;
  Solver.setWarmStart(Opts.WarmStart);
  Solver.setInprocessCadence(Opts.InprocessCadence);
  Cnf.assertTrue(Encoder.validity());
  Stats.ModelSeconds += Watch.seconds();
}

void InductiveSynth::addTrace(const verify::Counterexample &Cex) {
  WallTimer Watch;
  ProjectedTrace PT = projectTrace(FP, Cex);
  if (Cex.Where == verify::Counterexample::Phase::Prologue)
    PT = fullProgramOrder(FP);
  NodeRef Fail = Encoder.encodeTrace(PT);
  Cnf.assertFalse(Fail);
  ++Stats.Observations;
  Stats.ModelSeconds += Watch.seconds();
  Stats.GateCount = Graph.numNodes();
  Stats.ClauseCount = Solver.numClauses();
}

void InductiveSynth::addInputObservation(const GlobalOverrides &Overrides) {
  WallTimer Watch;
  ProjectedTrace PT = fullProgramOrder(FP);
  NodeRef Fail = Encoder.encodeTrace(PT, Overrides);
  Cnf.assertFalse(Fail);
  ++Stats.Observations;
  Stats.ModelSeconds += Watch.seconds();
  Stats.GateCount = Graph.numNodes();
  Stats.ClauseCount = Solver.numClauses();
}

std::vector<sat::Lit> InductiveSynth::scopeAssumptions() const {
  std::vector<sat::Lit> Assumptions;
  for (size_t I = 0; I < ScopeLits.size(); ++I)
    if (ScopeOpen[I])
      Assumptions.push_back(ScopeLits[I]);
  return Assumptions;
}

bool InductiveSynth::measuredSolve(const std::vector<sat::Lit> &Assumptions,
                                   bool Probe) {
  WallTimer Watch;
  const sat::SolverStats Before = Solver.stats();
  bool Sat =
      Assumptions.empty() ? Solver.solve() : Solver.solve(Assumptions);
  const sat::SolverStats &After = Solver.stats();
  double Seconds = Watch.seconds();
  Stats.SolveSeconds += Seconds;
  if (Probe) {
    ++Stats.Probes;
    return Sat;
  }
  SolveRecord Rec;
  Rec.Seconds = Seconds;
  Rec.Conflicts = After.Conflicts - Before.Conflicts;
  Rec.Decisions = After.Decisions - Before.Decisions;
  Rec.Restarts = After.Restarts - Before.Restarts;
  Rec.Propagations = After.Propagations - Before.Propagations;
  Rec.LearntClauses = Solver.numLearnts();
  Rec.Sat = Sat;
  Stats.Solves.push_back(Rec);
  return Sat;
}

bool InductiveSynth::solve(ir::HoleAssignment &CandidateOut) {
  if (!measuredSolve(scopeAssumptions(), /*Probe=*/false))
    return false;

  const std::vector<BitVec> &Holes = Encoder.holeBits();
  CandidateOut.assign(Holes.size(), 0);
  for (size_t I = 0; I < Holes.size(); ++I) {
    uint64_t Value = 0;
    for (unsigned B = 0; B < Holes[I].width(); ++B) {
      sat::Lit L = Cnf.litFor(Holes[I].bit(B));
      if (Solver.modelValue(L) == sat::LBool::True)
        Value |= (1ull << B);
    }
    CandidateOut[I] = Value;
  }
  return true;
}

unsigned InductiveSynth::openScope() {
  WallTimer Watch;
  sat::Var Activation = Solver.newVar();
  ScopeLits.push_back(sat::Lit(Activation, false));
  ScopeOpen.push_back(1);
  Stats.ModelSeconds += Watch.seconds();
  return static_cast<unsigned>(ScopeLits.size() - 1);
}

void InductiveSynth::closeScope(unsigned ScopeId) {
  WallTimer Watch;
  assert(ScopeId < ScopeLits.size() && ScopeOpen[ScopeId] &&
         "closing an unknown or already-closed scope");
  ScopeOpen[ScopeId] = 0;
  // Melt: with the activation literal a root-level fact (false), every
  // guarded clause is root-satisfied; inprocessing sweeps them.
  Solver.addClause(~ScopeLits[ScopeId]);
  Stats.ModelSeconds += Watch.seconds();
}

void InductiveSynth::assertScoped(NodeRef N, int Scope) {
  if (Scope < 0) {
    Cnf.assertTrue(N);
    return;
  }
  assert(static_cast<size_t>(Scope) < ScopeLits.size() && ScopeOpen[Scope] &&
         "asserting into an unknown or closed scope");
  // (~activation | N): inert unless the scope's literal is assumed.
  Solver.addClause(~ScopeLits[Scope], Cnf.litFor(N));
}

void InductiveSynth::banHoleValue(unsigned HoleId, uint64_t Value, int Scope) {
  WallTimer Watch;
  NodeRef Eq = bvEqConst(Graph, Encoder.holeBits()[HoleId], Value);
  assertScoped(~Eq, Scope);
  Stats.ModelSeconds += Watch.seconds();
}

void InductiveSynth::assertHoleConstraint(ir::ExprRef Constraint, int Scope) {
  WallTimer Watch;
  assertScoped(Encoder.encodeHoleOnly(Constraint), Scope);
  Stats.ModelSeconds += Watch.seconds();
}

void InductiveSynth::excludeCandidate(const ir::HoleAssignment &Candidate,
                                      int Scope) {
  WallTimer Watch;
  const std::vector<BitVec> &Holes = Encoder.holeBits();
  std::vector<NodeRef> Equalities;
  for (size_t I = 0; I < Holes.size() && I < Candidate.size(); ++I)
    Equalities.push_back(bvEqConst(Graph, Holes[I], Candidate[I]));
  assertScoped(~Graph.mkAndAll(Equalities), Scope);
  Stats.ModelSeconds += Watch.seconds();
}

bool InductiveSynth::probeHoleValue(unsigned HoleId, uint64_t Value) {
  std::vector<sat::Lit> Assumptions = scopeAssumptions();
  const BitVec &Bits = Encoder.holeBits()[HoleId];
  for (unsigned B = 0; B < Bits.width(); ++B) {
    sat::Lit L = Cnf.litFor(Bits.bit(B));
    Assumptions.push_back(((Value >> B) & 1) != 0 ? L : ~L);
  }
  return measuredSolve(Assumptions, /*Probe=*/true);
}

bool InductiveSynth::probeCandidate(const ir::HoleAssignment &Candidate) {
  std::vector<sat::Lit> Assumptions = scopeAssumptions();
  const std::vector<BitVec> &Holes = Encoder.holeBits();
  for (size_t I = 0; I < Holes.size() && I < Candidate.size(); ++I)
    for (unsigned B = 0; B < Holes[I].width(); ++B) {
      sat::Lit L = Cnf.litFor(Holes[I].bit(B));
      Assumptions.push_back(((Candidate[I] >> B) & 1) != 0 ? L : ~L);
    }
  return measuredSolve(Assumptions, /*Probe=*/true);
}

std::string InductiveSynth::dumpDimacs() {
  // Comment map first: litFor() may allocate a variable for a hole bit
  // the encoding never touched, so resolve every bit before snapshotting
  // the instance.
  const std::vector<BitVec> &Holes = Encoder.holeBits();
  const std::vector<ir::Hole> &Decls = FP.Source->holes();
  std::vector<std::string> Comments;
  Comments.push_back("psketch incremental synthesis instance");
  for (size_t I = 0; I < Holes.size(); ++I) {
    std::string Vars;
    for (unsigned B = 0; B < Holes[I].width(); ++B) {
      sat::Lit L = Cnf.litFor(Holes[I].bit(B));
      Vars += format("%s%d", B == 0 ? "" : " ",
                     (L.var() + 1) * (L.sign() ? -1 : 1));
    }
    const char *Name = I < Decls.size() ? Decls[I].Name.c_str() : "?";
    unsigned Choices = I < Decls.size() ? Decls[I].NumChoices : 0;
    Comments.push_back(format("hole %zu '%s' choices %u bits(lsb-first): %s",
                              I, Name, Choices, Vars.c_str()));
  }
  return sat::writeDimacs(sat::exportCnf(Solver), Comments);
}
