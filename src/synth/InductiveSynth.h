//===- synth/InductiveSynth.h - SAT-backed inductive synthesis --*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inductive half of CEGIS: keeps one incremental SAT instance alive
/// across the whole run; every observation (a projected counterexample
/// trace, or a concrete input for the sequential mode) adds the clauses of
/// `not fail(Sk_t[c])`; solve() proposes the next candidate consistent
/// with everything seen so far, or reports that the sketch cannot be
/// resolved.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_INDUCTIVESYNTH_H
#define PSKETCH_SYNTH_INDUCTIVESYNTH_H

#include "circuit/CnfBuilder.h"
#include "circuit/Graph.h"
#include "ir/HoleAssignment.h"
#include "sat/Solver.h"
#include "synth/Projection.h"
#include "synth/TraceEncoder.h"
#include "verify/Trace.h"

#include <memory>

namespace psketch {
namespace synth {

/// Timing of the two synthesizer phases, matching Figure 9's columns.
struct SynthStats {
  double ModelSeconds = 0.0; ///< Smodel: building circuits and clauses
  double SolveSeconds = 0.0; ///< Ssolve: SAT solving
  size_t Observations = 0;
  size_t GateCount = 0;
  size_t ClauseCount = 0;
};

/// The inductive synthesizer for one flat program.
class InductiveSynth {
public:
  explicit InductiveSynth(const flat::FlatProgram &FP);

  /// Adds a counterexample trace as an observation (projection + symbolic
  /// encoding + clauses).
  void addTrace(const verify::Counterexample &Cex);

  /// Adds a sequential observation: the program, run on the given initial
  /// global values, must not fail. Used by the `implements` CEGIS mode
  /// where observations are inputs, not schedules.
  void addInputObservation(const GlobalOverrides &Overrides);

  /// Finds a candidate consistent with all observations. \returns false
  /// if none exists (the sketch cannot be resolved).
  bool solve(ir::HoleAssignment &CandidateOut);

  /// Excludes a specific candidate from future solutions (used to
  /// enumerate multiple implementations, Section 8.3.1's autotuning note).
  void excludeCandidate(const ir::HoleAssignment &Candidate);

  /// Asserts that hole \p HoleId never takes \p Value (a static-analyzer
  /// unit ban: the value is a guaranteed failure or has an equivalent
  /// smaller representative).
  void banHoleValue(unsigned HoleId, uint64_t Value);

  /// Asserts a hole-only constraint from the static analyzer (e.g. a
  /// deadlocking-subspace exclusion or a reorder canonicalization).
  void assertHoleConstraint(ir::ExprRef Constraint);

  const SynthStats &stats() const { return Stats; }
  const sat::Solver &solver() const { return Solver; }

private:
  const flat::FlatProgram &FP;
  circuit::Graph Graph;
  sat::Solver Solver;
  circuit::CnfBuilder Cnf;
  TraceEncoder Encoder;
  SynthStats Stats;
};

} // namespace synth
} // namespace psketch

#endif // PSKETCH_SYNTH_INDUCTIVESYNTH_H
