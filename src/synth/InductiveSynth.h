//===- synth/InductiveSynth.h - SAT-backed inductive synthesis --*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inductive half of CEGIS: keeps one incremental SAT instance alive
/// across the whole run; every observation (a projected counterexample
/// trace, or a concrete input for the sequential mode) adds the clauses of
/// `not fail(Sk_t[c])`; solve() proposes the next candidate consistent
/// with everything seen so far, or reports that the sketch cannot be
/// resolved.
///
/// With warm start on (the default), consecutive solves continue one CDCL
/// search (docs/SOLVER.md), and constraints can be grouped into
/// activation-literal scopes: scoped constraints hold only while their
/// scope is open (each solve assumes the open scopes' activation
/// literals), and closing a scope retracts them permanently without
/// leaving garbage in the clause database.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_INDUCTIVESYNTH_H
#define PSKETCH_SYNTH_INDUCTIVESYNTH_H

#include "circuit/CnfBuilder.h"
#include "circuit/Graph.h"
#include "ir/HoleAssignment.h"
#include "sat/Solver.h"
#include "synth/Projection.h"
#include "synth/TraceEncoder.h"
#include "verify/Trace.h"

#include <memory>
#include <string>

namespace psketch {
namespace synth {

/// One candidate-proposing solve, as measured (the per-iteration Ssolve
/// telemetry psketch_tool --stats and the bench JSON rows report).
struct SolveRecord {
  double Seconds = 0.0;
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Restarts = 0;
  uint64_t Propagations = 0;
  size_t LearntClauses = 0; ///< learnt-DB size after the solve
  bool Sat = false;
};

/// Timing of the two synthesizer phases, matching Figure 9's columns.
struct SynthStats {
  double ModelSeconds = 0.0; ///< Smodel: building circuits and clauses
  double SolveSeconds = 0.0; ///< Ssolve: SAT solving (includes probes)
  size_t Observations = 0;
  size_t GateCount = 0;
  size_t ClauseCount = 0;
  size_t Probes = 0; ///< assumption-only what-if queries (not in Solves)
  std::vector<SolveRecord> Solves; ///< one entry per candidate solve
};

/// \returns the process-wide default for SynthOptions::WarmStart: true
/// unless the environment sets PSKETCH_WARM_START to "0" or "off" (the
/// CI knob that runs the whole suite on the from-scratch path).
bool defaultWarmStart();

/// Synthesizer construction knobs.
struct SynthOptions {
  /// Warm-started incremental solving (sat::Solver::setWarmStart).
  bool WarmStart = defaultWarmStart();
  /// Solves between root-level inprocessing passes (0 = off); only
  /// consulted when WarmStart is on.
  unsigned InprocessCadence = 4;
};

/// The inductive synthesizer for one flat program.
class InductiveSynth {
public:
  explicit InductiveSynth(const flat::FlatProgram &FP,
                          SynthOptions Opts = SynthOptions());

  /// Adds a counterexample trace as an observation (projection + symbolic
  /// encoding + clauses).
  void addTrace(const verify::Counterexample &Cex);

  /// Adds a sequential observation: the program, run on the given initial
  /// global values, must not fail. Used by the `implements` CEGIS mode
  /// where observations are inputs, not schedules.
  void addInputObservation(const GlobalOverrides &Overrides);

  /// Finds a candidate consistent with all observations (and all open
  /// scopes' constraints). \returns false if none exists (the sketch
  /// cannot be resolved).
  bool solve(ir::HoleAssignment &CandidateOut);

  /// Opens a constraint scope and \returns its id. Constraints asserted
  /// into the scope hold for every solve until closeScope() retracts
  /// them. Scoped constraints are guarded by a fresh activation literal
  /// that solve() assumes, so they never pollute the permanent clause
  /// database.
  unsigned openScope();

  /// Closes \p ScopeId: its constraints are retracted for good (the
  /// activation literal is forced false, melting the guarded clauses,
  /// which the solver's inprocessing then sweeps).
  void closeScope(unsigned ScopeId);

  /// Excludes a specific candidate from future solutions (used to
  /// enumerate multiple implementations, Section 8.3.1's autotuning
  /// note). \p Scope < 0 excludes permanently; otherwise the exclusion
  /// lives in that scope.
  void excludeCandidate(const ir::HoleAssignment &Candidate, int Scope = -1);

  /// Asserts that hole \p HoleId never takes \p Value (a static-analyzer
  /// unit ban: the value is a guaranteed failure or has an equivalent
  /// smaller representative).
  void banHoleValue(unsigned HoleId, uint64_t Value, int Scope = -1);

  /// Asserts a hole-only constraint from the static analyzer (e.g. a
  /// deadlocking-subspace exclusion or a reorder canonicalization).
  void assertHoleConstraint(ir::ExprRef Constraint, int Scope = -1);

  /// What-if query: \returns true iff some candidate with hole \p HoleId
  /// fixed to \p Value is consistent with all observations. Runs as an
  /// assumption solve — nothing is asserted, the instance is unchanged.
  bool probeHoleValue(unsigned HoleId, uint64_t Value);

  /// What-if query: \returns true iff \p Candidate itself is consistent
  /// with all observations (assumption solve; instance unchanged).
  bool probeCandidate(const ir::HoleAssignment &Candidate);

  /// Renders the live instance as DIMACS text, with a comment map from
  /// each hole to its SAT variables (psketch_tool --dump-cnf).
  std::string dumpDimacs();

  const SynthStats &stats() const { return Stats; }
  const sat::Solver &solver() const { return Solver; }

private:
  const flat::FlatProgram &FP;
  circuit::Graph Graph;
  sat::Solver Solver;
  circuit::CnfBuilder Cnf;
  TraceEncoder Encoder;
  SynthStats Stats;
  SynthOptions Opts;

  // Activation literals, indexed by scope id; Open flags which are live.
  std::vector<sat::Lit> ScopeLits;
  std::vector<char> ScopeOpen;

  /// The open scopes' activation literals (every solve assumes these).
  std::vector<sat::Lit> scopeAssumptions() const;

  /// Asserts node \p N (true) into \p Scope: permanently when negative,
  /// otherwise as the guarded clause (~activation | N).
  void assertScoped(circuit::NodeRef N, int Scope);

  /// Runs one measured solve under \p Assumptions, recording telemetry
  /// into Stats.Solves when \p Probe is false.
  bool measuredSolve(const std::vector<sat::Lit> &Assumptions, bool Probe);
};

} // namespace synth
} // namespace psketch

#endif // PSKETCH_SYNTH_INDUCTIVESYNTH_H
