//===- synth/Projection.cpp ------------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "synth/Projection.h"

#include <cassert>

using namespace psketch;
using namespace psketch::synth;
using verify::Counterexample;
using verify::TraceStep;

ProjectedTrace psketch::synth::fullProgramOrder(const flat::FlatProgram &FP) {
  ProjectedTrace PT;
  PT.Truncated.assign(FP.Threads.size(), false);
  for (unsigned T = 0; T < FP.Threads.size(); ++T)
    for (uint32_t Pc = 0; Pc < FP.Threads[T].Steps.size(); ++Pc)
      PT.Sequence.push_back(TraceStep{T, Pc});
  PT.IncludeEpilogue = true;
  PT.DeadlockStart = PT.Sequence.size();
  return PT;
}

ProjectedTrace psketch::synth::projectTrace(const flat::FlatProgram &FP,
                                            const Counterexample &Cex) {
  unsigned NumThreads = static_cast<unsigned>(FP.Threads.size());
  ProjectedTrace PT;
  PT.Truncated.assign(NumThreads, false);

  // Next per-thread pc that has not been emitted yet.
  std::vector<uint32_t> NextPc(NumThreads, 0);

  auto EmitThrough = [&](unsigned Thread, uint32_t Pc) {
    // Program-order rule: untraced predecessors (statically dead under the
    // failing candidate) are slotted in right before the traced step.
    for (uint32_t Q = NextPc[Thread]; Q <= Pc; ++Q)
      PT.Sequence.push_back(TraceStep{Thread, Q});
    if (Pc + 1 > NextPc[Thread])
      NextPc[Thread] = Pc + 1;
  };

  // (i) Trace order for traced steps.
  for (const TraceStep &S : Cex.Steps) {
    assert(S.Thread < NumThreads && "trace step of unknown thread");
    if (S.Pc >= NextPc[S.Thread])
      EmitThrough(S.Thread, S.Pc);
  }

  bool Deadlock = Cex.V.VKind == exec::Violation::Kind::Deadlock;
  if (Deadlock) {
    // (iii) Every non-deadlock step precedes the deadlock set; the blocked
    // steps come last and everything after them is dropped.
    for (const TraceStep &D : Cex.DeadlockSet)
      if (D.Pc > NextPc[D.Thread])
        EmitThrough(D.Thread, D.Pc - 1);
    PT.DeadlockStart = PT.Sequence.size();
    for (const TraceStep &D : Cex.DeadlockSet) {
      PT.Sequence.push_back(TraceStep{D.Thread, D.Pc});
      NextPc[D.Thread] = D.Pc + 1;
    }
    PT.IncludeEpilogue = false;
    for (unsigned T = 0; T < NumThreads; ++T)
      PT.Truncated[T] = NextPc[T] < FP.Threads[T].Steps.size();
    return PT;
  }

  // (ii) Complete the interleaving: append every remaining step in
  // program order (the relative order across threads is arbitrary; we use
  // thread index order).
  for (unsigned T = 0; T < NumThreads; ++T) {
    uint32_t Len = static_cast<uint32_t>(FP.Threads[T].Steps.size());
    if (NextPc[T] < Len)
      EmitThrough(T, Len - 1);
  }
  PT.IncludeEpilogue = true;
  PT.DeadlockStart = PT.Sequence.size();
  return PT;
}
