//===- support/Hash.h - State fingerprint hashing ---------------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 64-bit word-vector hash behind the checker's Fingerprint visited
/// mode (SPIN-lineage hash compaction). One SplitMix64 finalizer round per
/// word keeps the whole fingerprint a handful of multiplies — cheap enough
/// to compute on every dedup probe — while the finalizer's avalanche gives
/// full 64-bit diffusion per input word.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_HASH_H
#define PSKETCH_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>

namespace psketch {

/// The SplitMix64 finalizer: a cheap bijective 64-bit mixer with full
/// avalanche (same constants as support/Rng.h uses for stream seeding).
inline uint64_t mix64(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

/// Fingerprints \p N contiguous 64-bit words. The length is folded into
/// the seed so prefixes never collide with their extensions, and each
/// word passes through one full mixing round before being chained.
inline uint64_t hashWords(const int64_t *W, size_t N) {
  uint64_t H = 0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(N);
  for (size_t I = 0; I < N; ++I)
    H = mix64(H + 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(W[I]));
  return H;
}

} // namespace psketch

#endif // PSKETCH_SUPPORT_HASH_H
