//===- support/Hash.h - State fingerprint hashing ---------------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 64-bit word-vector hash behind the checker's Fingerprint visited
/// mode (SPIN-lineage hash compaction). One SplitMix64 finalizer round per
/// word keeps the whole fingerprint a handful of multiplies — cheap enough
/// to compute on every dedup probe — while the finalizer's avalanche gives
/// full 64-bit diffusion per input word.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_HASH_H
#define PSKETCH_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>

namespace psketch {

/// The SplitMix64 finalizer: a cheap bijective 64-bit mixer with full
/// avalanche (same constants as support/Rng.h uses for stream seeding).
inline uint64_t mix64(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

/// Fingerprints \p N contiguous 64-bit words. The length is folded into
/// the seed so prefixes never collide with their extensions, and each
/// word passes through one full mixing round before being chained.
inline uint64_t hashWords(const int64_t *W, size_t N) {
  uint64_t H = 0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(N);
  for (size_t I = 0; I < N; ++I)
    H = mix64(H + 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(W[I]));
  return H;
}

namespace hashdetail {

/// Portable scalar twin of the batched kernel. Lane K of a word-major SoA
/// block stores its words at W[I * Stride + K]; the per-lane chain is the
/// exact hashWords recurrence, so Out[K] == hashWords(lane K) bit for bit.
inline void hashWordsBatchScalar(const int64_t *W, size_t NWords,
                                 size_t Lanes, size_t Stride, uint64_t *Out) {
  for (size_t K = 0; K < Lanes; ++K)
    Out[K] = 0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(NWords);
  for (size_t I = 0; I < NWords; ++I) {
    const int64_t *Row = W + I * Stride;
    for (size_t K = 0; K < Lanes; ++K)
      Out[K] =
          mix64(Out[K] + 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(Row[K]));
  }
}

} // namespace hashdetail

/// Fingerprints \p Lanes states held word-major in a SoA block (word I of
/// lane K at W[I * Stride + K]). Each Out[K] is bit-identical to
/// hashWords over lane K's words. Dispatches to an AVX2 kernel when the
/// build and CPU allow it (-DPSKETCH_SIMD=auto|avx2), otherwise runs the
/// scalar twin above; both paths produce the same bits.
void hashWordsBatch(const int64_t *W, size_t NWords, size_t Lanes,
                    size_t Stride, uint64_t *Out);

/// Fingerprints \p Lanes states held as independent AoS word arrays (lane
/// K's words at W[K][0..NWords)): Out[K] == hashWords(W[K], NWords) bit
/// for bit. The AVX2 kernel transposes in registers as it goes, so
/// callers that keep whole states (the frontier engine's
/// no-canonicalization path) skip the word-major staging copy entirely —
/// the SoA entry point above is for producers whose data is already
/// transposed (the batched orbit canonicalizer).
void hashWordsBatchPtrs(const int64_t *const *W, size_t NWords,
                        size_t Lanes, uint64_t *Out);

/// The SIMD kernel variant the process will actually run: "avx2" when the
/// build enables it and the CPU supports it, else "scalar". Stable for the
/// process lifetime; benches embed it in their JSON provenance.
const char *simdMode();

} // namespace psketch

#endif // PSKETCH_SUPPORT_HASH_H
