//===- support/Parallel.h - Tiny fork-join helpers --------------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fork-join loop for the embarrassingly parallel spots
/// (candidate batches in cegis/Enumerate, schedule measurement fan-out).
/// The heavy machinery — work stealing, sharded dedup — lives in
/// src/verify; this is deliberately just "run f(0..N-1) on J threads".
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_PARALLEL_H
#define PSKETCH_SUPPORT_PARALLEL_H

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace psketch {

/// Runs \p Fn(I) for every I in [0, N) across up to \p Jobs threads
/// (claimed dynamically). Jobs <= 1 or N <= 1 degrades to a plain loop.
/// \p Fn must be safe to call concurrently for distinct indices.
template <typename FnT>
void parallelFor(unsigned Jobs, size_t N, const FnT &Fn) {
  if (Jobs <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  std::atomic<size_t> Next{0};
  auto Loop = [&]() {
    for (;;) {
      size_t I = Next.fetch_add(1);
      if (I >= N)
        return;
      Fn(I);
    }
  };
  size_t Spawn = static_cast<size_t>(Jobs) < N ? Jobs : N;
  std::vector<std::thread> Threads;
  for (size_t I = 1; I < Spawn; ++I)
    Threads.emplace_back(Loop);
  Loop();
  for (std::thread &T : Threads)
    T.join();
}

} // namespace psketch

#endif // PSKETCH_SUPPORT_PARALLEL_H
