//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64) used by the random-schedule
/// falsifier and the property tests. Determinism matters: a CEGIS run must
/// be reproducible from its seed.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_RNG_H
#define PSKETCH_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace psketch {

/// SplitMix64: tiny, fast, and statistically solid enough for schedule
/// sampling and test-input generation.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// \returns the next 64 pseudo-random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// \returns a uniformly distributed value in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    // Rejection-free multiply-shift; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// \returns a pseudo-random boolean that is true with probability
  /// \p Numerator / \p Denominator.
  bool chance(uint64_t Numerator, uint64_t Denominator) {
    assert(Denominator > 0 && "zero denominator");
    return below(Denominator) < Numerator;
  }

private:
  uint64_t State;
};

} // namespace psketch

#endif // PSKETCH_SUPPORT_RNG_H
