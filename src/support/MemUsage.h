//===- support/MemUsage.h - Process memory statistics -----------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Peak resident-set-size queries, used for the memory column of the
/// paper's Figure 9.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_MEMUSAGE_H
#define PSKETCH_SUPPORT_MEMUSAGE_H

namespace psketch {

/// \returns the peak resident set size of this process in MiB, or 0.0 if it
/// cannot be determined on this platform.
double peakRSSMiB();

/// \returns the current resident set size of this process in MiB, or 0.0 if
/// it cannot be determined on this platform.
double currentRSSMiB();

} // namespace psketch

#endif // PSKETCH_SUPPORT_MEMUSAGE_H
