//===- support/Mmap.cpp ----------------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "support/Mmap.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace psketch;

bool MappedFile::map(const std::string &Path) {
#if defined(__unix__) || defined(__APPLE__)
  reset();
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return false;
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    ::close(Fd);
    return false;
  }
  if (St.st_size == 0) {
    // A zero-length file maps to nothing; that is a successful (empty)
    // mapping, not an error.
    ::close(Fd);
    return true;
  }
  void *P = ::mmap(nullptr, static_cast<size_t>(St.st_size), PROT_READ,
                   MAP_PRIVATE, Fd, 0);
  ::close(Fd); // the mapping keeps its own reference
  if (P == MAP_FAILED)
    return false;
#ifdef MADV_RANDOM
  // Binary-search access: readahead would fault in pages the probe never
  // touches. Advisory only — failure is ignored.
  (void)::madvise(P, static_cast<size_t>(St.st_size), MADV_RANDOM);
#endif
  Data = P;
  Size = static_cast<size_t>(St.st_size);
  return true;
#else
  (void)Path;
  return false;
#endif
}

void MappedFile::reset() {
#if defined(__unix__) || defined(__APPLE__)
  if (Data)
    ::munmap(Data, Size);
#endif
  Data = nullptr;
  Size = 0;
}
