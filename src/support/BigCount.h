//===- support/BigCount.h - Saturating candidate-space counts ---*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact (saturating 128-bit) counting of candidate-program spaces. The
/// paper's Table 1 reports |C| per sketch; products of hole cardinalities
/// and reorder factorials overflow 64 bits quickly, so we count in 128 bits
/// with saturation and provide a log10 view for Figure 10.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_BIGCOUNT_H
#define PSKETCH_SUPPORT_BIGCOUNT_H

#include <cstdint>
#include <string>

namespace psketch {

/// A saturating unsigned 128-bit counter for candidate-space sizes.
class BigCount {
public:
  /// Constructs the count \p Value (default 1: the empty product).
  BigCount(uint64_t Value = 1) : Value(Value), Saturated(false) {}

  /// \returns the saturated maximum count.
  static BigCount saturated();

  /// Multiplies in \p Factor, saturating on overflow.
  BigCount &operator*=(const BigCount &Factor);
  friend BigCount operator*(BigCount A, const BigCount &B) { return A *= B; }

  /// Adds \p Addend, saturating on overflow.
  BigCount &operator+=(const BigCount &Addend);
  friend BigCount operator+(BigCount A, const BigCount &B) { return A += B; }

  /// \returns k! as a BigCount (saturating).
  static BigCount factorial(unsigned K);

  /// \returns Base^Exp as a BigCount (saturating).
  static BigCount pow(uint64_t Base, unsigned Exp);

  /// \returns true if the count exceeded 128 bits at some point.
  bool isSaturated() const { return Saturated; }

  /// \returns log10 of the count (inf-safe: saturated counts return the
  /// log10 of the 128-bit maximum, a lower bound).
  double log10() const;

  /// \returns the exact value when it fits in 64 bits.
  bool fitsInU64() const;
  uint64_t asU64() const;

  /// \returns a decimal rendering, suffixed with "+" when saturated.
  std::string str() const;

  friend bool operator==(const BigCount &A, const BigCount &B) {
    return A.Value == B.Value && A.Saturated == B.Saturated;
  }

private:
  unsigned __int128 Value;
  bool Saturated;
};

} // namespace psketch

#endif // PSKETCH_SUPPORT_BIGCOUNT_H
