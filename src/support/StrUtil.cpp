//===- support/StrUtil.cpp -------------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "support/StrUtil.h"

#include <cstdarg>
#include <cstdio>

using namespace psketch;

std::string psketch::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::vector<std::string> psketch::split(const std::string &Text,
                                        char Separator) {
  std::vector<std::string> Pieces;
  std::string Current;
  for (char C : Text) {
    if (C == Separator) {
      Pieces.push_back(Current);
      Current.clear();
      continue;
    }
    Current.push_back(C);
  }
  Pieces.push_back(Current);
  return Pieces;
}

std::string psketch::trim(const std::string &Text) {
  size_t Begin = 0, End = Text.size();
  auto IsSpace = [](char C) {
    return C == ' ' || C == '\t' || C == '\n' || C == '\r';
  };
  while (Begin < End && IsSpace(Text[Begin]))
    ++Begin;
  while (End > Begin && IsSpace(Text[End - 1]))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool psketch::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

std::string psketch::join(const std::vector<std::string> &Pieces,
                          const std::string &Separator) {
  std::string Result;
  for (size_t I = 0; I < Pieces.size(); ++I) {
    if (I != 0)
      Result += Separator;
    Result += Pieces[I];
  }
  return Result;
}
