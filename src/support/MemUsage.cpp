//===- support/MemUsage.cpp ------------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "support/MemUsage.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace psketch {

double peakRSSMiB() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(Usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(Usage.ru_maxrss) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

double currentRSSMiB() {
#if defined(__linux__)
  FILE *Statm = std::fopen("/proc/self/statm", "r");
  if (!Statm)
    return 0.0;
  long Size = 0, Resident = 0;
  int Matched = std::fscanf(Statm, "%ld %ld", &Size, &Resident);
  std::fclose(Statm);
  if (Matched != 2)
    return 0.0;
  const double PageMiB = 4096.0 / (1024.0 * 1024.0);
  return static_cast<double>(Resident) * PageMiB;
#else
  return peakRSSMiB();
#endif
}

} // namespace psketch
