//===- support/StrUtil.h - Small string helpers -----------------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting and splitting helpers shared by the printer, the
/// frontend diagnostics, and the benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_STRUTIL_H
#define PSKETCH_SUPPORT_STRUTIL_H

#include <string>
#include <vector>

namespace psketch {

/// printf-style formatting into a std::string.
std::string format(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits \p Text on \p Separator; empty pieces are kept.
std::vector<std::string> split(const std::string &Text, char Separator);

/// \returns \p Text with leading and trailing ASCII whitespace removed.
std::string trim(const std::string &Text);

/// \returns true if \p Text starts with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// Joins \p Pieces with \p Separator between consecutive elements.
std::string join(const std::vector<std::string> &Pieces,
                 const std::string &Separator);

} // namespace psketch

#endif // PSKETCH_SUPPORT_STRUTIL_H
