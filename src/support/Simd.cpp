//===- support/Simd.cpp - Batched hash kernels with AVX2 dispatch ---------===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime-dispatched batched fingerprinting. The AVX2 kernel is compiled
/// with a per-function target attribute (no global -mavx2), so one binary
/// carries both paths and picks at runtime via __builtin_cpu_supports. The
/// scalar twin in support/Hash.h is the semantic reference: the vector
/// kernel mirrors its recurrence lane for lane, so the two are bit-identical
/// and the differential tests can compare them directly.
///
/// Build-time policy comes in as PSKETCH_SIMD_MODE:
///   0 = off   (always scalar)
///   1 = auto  (AVX2 iff the CPU reports it; the default)
///   2 = avx2  (unconditional AVX2 — for CI jobs pinning the vector path)
///
//===----------------------------------------------------------------------===//

#include "support/Hash.h"

#ifndef PSKETCH_SIMD_MODE
#define PSKETCH_SIMD_MODE 1
#endif

#if PSKETCH_SIMD_MODE != 0 && (defined(__x86_64__) || defined(__i386__)) &&    \
    (defined(__GNUC__) || defined(__clang__))
#define PSKETCH_SIMD_X86 1
#else
#define PSKETCH_SIMD_X86 0
#endif

#if PSKETCH_SIMD_X86
#include <immintrin.h>
#endif

namespace psketch {

#if PSKETCH_SIMD_X86

namespace {

/// Full 64x64->64 low multiply by a compile-time-constant \p B from
/// AVX2's 32-bit primitives:
/// lo(a*b) = lo32(a)*lo32(b) + ((lo32(a)*hi32(b) + hi32(a)*lo32(b)) << 32).
/// With the multiplier constant its halves are pre-splat vectors, so the
/// cross terms come from two vpmuludq instead of a vpmullds, and a_hi
/// reaches vpmuludq's low dword via a dword shuffle (shuffle port)
/// rather than a 64-bit shift — fewer uops on the multiply/shift port,
/// which is what bounds the interleaved-chain throughput.
template <uint64_t B>
__attribute__((target("avx2"))) inline __m256i mulC64(__m256i A) {
  const __m256i BLo = _mm256_set1_epi64x(static_cast<long long>(B & 0xffffffffull));
  const __m256i BHi = _mm256_set1_epi64x(static_cast<long long>(B >> 32));
  __m256i AHi = _mm256_shuffle_epi32(A, 0xB1); // a_hi in each low dword
  __m256i Low = _mm256_mul_epu32(A, BLo);      // a_lo * b_lo, full 64 bits
  __m256i Cross = _mm256_add_epi64(_mm256_mul_epu32(A, BHi),    // a_lo*b_hi
                                   _mm256_mul_epu32(AHi, BLo)); // a_hi*b_lo
  return _mm256_add_epi64(Low, _mm256_slli_epi64(Cross, 32));
}

/// Four-lane SplitMix64 finalizer; mirrors mix64 in support/Hash.h.
__attribute__((target("avx2"))) inline __m256i mix64x4(__m256i Z) {
  Z = mulC64<0xbf58476d1ce4e5b9ull>(_mm256_xor_si256(Z, _mm256_srli_epi64(Z, 30)));
  Z = mulC64<0x94d049bb133111ebull>(_mm256_xor_si256(Z, _mm256_srli_epi64(Z, 27)));
  return _mm256_xor_si256(Z, _mm256_srli_epi64(Z, 31));
}

__attribute__((target("avx2"))) void
hashWordsBatchAvx2(const int64_t *W, size_t NWords, size_t Lanes,
                   size_t Stride, uint64_t *Out) {
  const __m256i Golden =
      _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ull));
  size_t K = 0;
  // 16 lanes per pass: four independent SplitMix chains in flight, so
  // the serial multiply latency of one chain is hidden behind the other
  // three. Same recurrence as the 4-lane loop, word for word.
  for (; K + 16 <= Lanes; K += 16) {
    __m256i H0 = _mm256_xor_si256(
        Golden, _mm256_set1_epi64x(static_cast<long long>(NWords)));
    __m256i H1 = H0, H2 = H0, H3 = H0;
    for (size_t I = 0; I < NWords; ++I) {
      const int64_t *Row = W + I * Stride + K;
      __m256i R0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Row + 0));
      __m256i R1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Row + 4));
      __m256i R2 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Row + 8));
      __m256i R3 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Row + 12));
      H0 = mix64x4(_mm256_add_epi64(_mm256_add_epi64(H0, Golden), R0));
      H1 = mix64x4(_mm256_add_epi64(_mm256_add_epi64(H1, Golden), R1));
      H2 = mix64x4(_mm256_add_epi64(_mm256_add_epi64(H2, Golden), R2));
      H3 = mix64x4(_mm256_add_epi64(_mm256_add_epi64(H3, Golden), R3));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + K + 0), H0);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + K + 4), H1);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + K + 8), H2);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + K + 12), H3);
  }
  for (; K + 4 <= Lanes; K += 4) {
    __m256i H = _mm256_xor_si256(
        Golden, _mm256_set1_epi64x(static_cast<long long>(NWords)));
    for (size_t I = 0; I < NWords; ++I) {
      __m256i Row = _mm256_loadu_si256(
          reinterpret_cast<const __m256i *>(W + I * Stride + K));
      H = mix64x4(_mm256_add_epi64(_mm256_add_epi64(H, Golden), Row));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + K), H);
  }
  if (K < Lanes) { // remainder lanes run the scalar twin
    for (size_t R = K; R < Lanes; ++R)
      Out[R] = 0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(NWords);
    for (size_t I = 0; I < NWords; ++I)
      for (size_t R = K; R < Lanes; ++R)
        Out[R] = mix64(Out[R] + 0x9e3779b97f4a7c15ull +
                       static_cast<uint64_t>(W[I * Stride + R]));
  }
}

/// Gathers word \p I of four consecutive lanes starting at \p W[K] into
/// one vector — the register-transpose step of the pointer kernel.
__attribute__((target("avx2"))) inline __m256i
gatherWord4(const int64_t *const *W, size_t K, size_t I) {
  return _mm256_set_epi64x(W[K + 3][I], W[K + 2][I], W[K + 1][I], W[K + 0][I]);
}

__attribute__((target("avx2"))) void
hashWordsBatchPtrsAvx2(const int64_t *const *W, size_t NWords, size_t Lanes,
                       uint64_t *Out) {
  const __m256i Golden =
      _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ull));
  size_t K = 0;
  // Same chain structure as the SoA kernel: four independent SplitMix
  // chains hide the serial multiply latency; the lane gather replaces
  // the SoA row load.
  for (; K + 16 <= Lanes; K += 16) {
    __m256i H0 = _mm256_xor_si256(
        Golden, _mm256_set1_epi64x(static_cast<long long>(NWords)));
    __m256i H1 = H0, H2 = H0, H3 = H0;
    for (size_t I = 0; I < NWords; ++I) {
      H0 = mix64x4(_mm256_add_epi64(_mm256_add_epi64(H0, Golden),
                                    gatherWord4(W, K + 0, I)));
      H1 = mix64x4(_mm256_add_epi64(_mm256_add_epi64(H1, Golden),
                                    gatherWord4(W, K + 4, I)));
      H2 = mix64x4(_mm256_add_epi64(_mm256_add_epi64(H2, Golden),
                                    gatherWord4(W, K + 8, I)));
      H3 = mix64x4(_mm256_add_epi64(_mm256_add_epi64(H3, Golden),
                                    gatherWord4(W, K + 12, I)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + K + 0), H0);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + K + 4), H1);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + K + 8), H2);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + K + 12), H3);
  }
  for (; K + 4 <= Lanes; K += 4) {
    __m256i H = _mm256_xor_si256(
        Golden, _mm256_set1_epi64x(static_cast<long long>(NWords)));
    for (size_t I = 0; I < NWords; ++I)
      H = mix64x4(
          _mm256_add_epi64(_mm256_add_epi64(H, Golden), gatherWord4(W, K, I)));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + K), H);
  }
  for (; K < Lanes; ++K) // remainder lanes run the scalar reference
    Out[K] = hashWords(W[K], NWords);
}

bool avx2Active() {
#if PSKETCH_SIMD_MODE == 2
  return true;
#else
  static const bool Avail = __builtin_cpu_supports("avx2");
  return Avail;
#endif
}

} // namespace

void hashWordsBatch(const int64_t *W, size_t NWords, size_t Lanes,
                    size_t Stride, uint64_t *Out) {
  if (avx2Active() && Lanes >= 4) {
    hashWordsBatchAvx2(W, NWords, Lanes, Stride, Out);
    return;
  }
  hashdetail::hashWordsBatchScalar(W, NWords, Lanes, Stride, Out);
}

void hashWordsBatchPtrs(const int64_t *const *W, size_t NWords, size_t Lanes,
                        uint64_t *Out) {
  if (avx2Active() && Lanes >= 4) {
    hashWordsBatchPtrsAvx2(W, NWords, Lanes, Out);
    return;
  }
  for (size_t K = 0; K < Lanes; ++K)
    Out[K] = hashWords(W[K], NWords);
}

const char *simdMode() { return avx2Active() ? "avx2" : "scalar"; }

#else // !PSKETCH_SIMD_X86

void hashWordsBatch(const int64_t *W, size_t NWords, size_t Lanes,
                    size_t Stride, uint64_t *Out) {
  hashdetail::hashWordsBatchScalar(W, NWords, Lanes, Stride, Out);
}

void hashWordsBatchPtrs(const int64_t *const *W, size_t NWords, size_t Lanes,
                        uint64_t *Out) {
  for (size_t K = 0; K < Lanes; ++K)
    Out[K] = hashWords(W[K], NWords);
}

const char *simdMode() { return "scalar"; }

#endif // PSKETCH_SIMD_X86

} // namespace psketch
