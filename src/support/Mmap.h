//===- support/Mmap.h - Read-only memory-mapped files -----------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal RAII wrapper over a read-only memory-mapped file, used by
/// the spill tier (verify/SpillStore.h) to binary-search sorted
/// fingerprint runs without read() syscalls or userspace buffering: the
/// page cache is the read cache, shared across probes and across run
/// generations. The mapping advises MADV_RANDOM — probe access is a
/// binary-search walk, so readahead would only pollute the cache.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_MMAP_H
#define PSKETCH_SUPPORT_MMAP_H

#include <cstddef>
#include <string>

namespace psketch {

/// A read-only mapping of one file. Move-only; the destructor unmaps.
/// An empty or failed mapping has data() == nullptr and size() == 0, so
/// callers can treat "could not map" and "empty file" uniformly.
class MappedFile {
public:
  MappedFile() = default;
  ~MappedFile() { reset(); }

  MappedFile(MappedFile &&Other) noexcept
      : Data(Other.Data), Size(Other.Size) {
    Other.Data = nullptr;
    Other.Size = 0;
  }
  MappedFile &operator=(MappedFile &&Other) noexcept {
    if (this != &Other) {
      reset();
      Data = Other.Data;
      Size = Other.Size;
      Other.Data = nullptr;
      Other.Size = 0;
    }
    return *this;
  }
  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;

  /// Maps \p Path read-only. \returns false (leaving the object empty)
  /// when the file cannot be opened, stat'd, or mapped. Mapping a
  /// zero-length file succeeds with data() == nullptr.
  bool map(const std::string &Path);

  /// Unmaps (no-op when empty).
  void reset();

  const void *data() const { return Data; }
  size_t size() const { return Size; }

  /// Hints the kernel to start paging in the line around \p Offset —
  /// best-effort (a plain prefetch of the mapped address), used by the
  /// batched probe sweep to overlap run-page faults across lanes.
  void prefetch(size_t Offset) const {
    if (Data && Offset < Size)
      __builtin_prefetch(static_cast<const char *>(Data) + Offset);
  }

private:
  void *Data = nullptr;
  size_t Size = 0;
};

} // namespace psketch

#endif // PSKETCH_SUPPORT_MMAP_H
