//===- support/BigCount.cpp ------------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "support/BigCount.h"

#include <cassert>
#include <cmath>

using namespace psketch;

static const unsigned __int128 Max128 = ~static_cast<unsigned __int128>(0);

BigCount BigCount::saturated() {
  BigCount C;
  C.Value = Max128;
  C.Saturated = true;
  return C;
}

BigCount &BigCount::operator*=(const BigCount &Factor) {
  Saturated |= Factor.Saturated;
  if (Factor.Value != 0 && Value > Max128 / Factor.Value) {
    Value = Max128;
    Saturated = true;
    return *this;
  }
  Value *= Factor.Value;
  return *this;
}

BigCount &BigCount::operator+=(const BigCount &Addend) {
  Saturated |= Addend.Saturated;
  if (Value > Max128 - Addend.Value) {
    Value = Max128;
    Saturated = true;
    return *this;
  }
  Value += Addend.Value;
  return *this;
}

BigCount BigCount::factorial(unsigned K) {
  BigCount Result;
  for (unsigned I = 2; I <= K; ++I)
    Result *= BigCount(I);
  return Result;
}

BigCount BigCount::pow(uint64_t Base, unsigned Exp) {
  BigCount Result;
  for (unsigned I = 0; I < Exp; ++I)
    Result *= BigCount(Base);
  return Result;
}

double BigCount::log10() const {
  if (Value == 0)
    return -std::numeric_limits<double>::infinity();
  // Split into high and low 64-bit halves for a precise double conversion.
  uint64_t Hi = static_cast<uint64_t>(Value >> 64);
  uint64_t Lo = static_cast<uint64_t>(Value);
  double AsDouble = static_cast<double>(Hi) * 18446744073709551616.0 +
                    static_cast<double>(Lo);
  return std::log10(AsDouble);
}

bool BigCount::fitsInU64() const {
  return !Saturated && (Value >> 64) == 0;
}

uint64_t BigCount::asU64() const {
  assert(fitsInU64() && "count does not fit in 64 bits");
  return static_cast<uint64_t>(Value);
}

std::string BigCount::str() const {
  if (Value == 0)
    return Saturated ? "0+" : "0";
  std::string Digits;
  unsigned __int128 Rest = Value;
  while (Rest != 0) {
    Digits.push_back(static_cast<char>('0' + static_cast<int>(Rest % 10)));
    Rest /= 10;
  }
  std::string Result(Digits.rbegin(), Digits.rend());
  if (Saturated)
    Result += "+";
  return Result;
}
