//===- support/Timer.h - Wall-clock timers ----------------------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timers used to report the per-phase CEGIS statistics of the
/// paper's Figure 9 (Ssolve, Smodel, Vsolve, Vmodel, Total).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_TIMER_H
#define PSKETCH_SUPPORT_TIMER_H

#include <chrono>
#include <map>
#include <string>

namespace psketch {

/// A simple monotonic wall-clock stopwatch.
class WallTimer {
public:
  WallTimer() { reset(); }

  /// Restarts the stopwatch at zero.
  void reset() { Start = Clock::now(); }

  /// \returns seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Accumulates wall-clock time into named phases.
///
/// The CEGIS driver charges each span of work to one of the Figure 9
/// phases; totals are read back when the run finishes.
class PhaseTimer {
public:
  /// Adds \p Seconds to the running total of phase \p Phase.
  void charge(const std::string &Phase, double Seconds) {
    Totals[Phase] += Seconds;
  }

  /// \returns the accumulated seconds for \p Phase (0 if never charged).
  double total(const std::string &Phase) const {
    auto It = Totals.find(Phase);
    return It == Totals.end() ? 0.0 : It->second;
  }

  /// Clears all accumulated phases.
  void reset() { Totals.clear(); }

private:
  std::map<std::string, double> Totals;
};

/// RAII helper: charges the enclosed span to a phase on destruction.
class ScopedPhase {
public:
  ScopedPhase(PhaseTimer &Timer, std::string Phase)
      : Timer(Timer), Phase(std::move(Phase)) {}
  ~ScopedPhase() { Timer.charge(Phase, Watch.seconds()); }

  ScopedPhase(const ScopedPhase &) = delete;
  ScopedPhase &operator=(const ScopedPhase &) = delete;

private:
  PhaseTimer &Timer;
  std::string Phase;
  WallTimer Watch;
};

} // namespace psketch

#endif // PSKETCH_SUPPORT_TIMER_H
