//===- support/Timer.cpp --------------------------------------------------===//
//
// Part of psketch-cpp. All timer members are header-inline; this translation
// unit exists to anchor the library.
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"
