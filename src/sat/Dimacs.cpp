//===- sat/Dimacs.cpp ------------------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "sat/Dimacs.h"

#include "sat/Solver.h"
#include "support/StrUtil.h"

#include <cstdlib>
#include <sstream>

using namespace psketch;
using namespace psketch::sat;

bool psketch::sat::parseDimacs(const std::string &Text, Cnf &CnfOut,
                               std::string &ErrorOut) {
  CnfOut = Cnf();
  std::istringstream Stream(Text);
  std::string Token;
  std::vector<Lit> Current;
  bool SawHeader = false;

  while (Stream >> Token) {
    if (Token == "c") {
      std::string Rest;
      std::getline(Stream, Rest);
      continue;
    }
    if (Token == "p") {
      std::string Kind;
      int DeclaredVars = 0, DeclaredClauses = 0;
      if (!(Stream >> Kind >> DeclaredVars >> DeclaredClauses) ||
          Kind != "cnf") {
        ErrorOut = "malformed problem line";
        return false;
      }
      CnfOut.NumVars = DeclaredVars;
      SawHeader = true;
      continue;
    }
    char *End = nullptr;
    long Value = std::strtol(Token.c_str(), &End, 10);
    if (End == Token.c_str() || *End != '\0') {
      ErrorOut = "unexpected token '" + Token + "'";
      return false;
    }
    if (Value == 0) {
      CnfOut.Clauses.push_back(Current);
      Current.clear();
      continue;
    }
    int V = static_cast<int>(Value < 0 ? -Value : Value) - 1;
    if (V + 1 > CnfOut.NumVars)
      CnfOut.NumVars = V + 1;
    Current.push_back(Lit(V, Value < 0));
  }
  if (!Current.empty()) {
    ErrorOut = "trailing clause without terminating 0";
    return false;
  }
  if (!SawHeader && CnfOut.Clauses.empty() && CnfOut.NumVars == 0) {
    ErrorOut = "empty input";
    return false;
  }
  return true;
}

std::string psketch::sat::writeDimacs(const Cnf &Formula,
                                      const std::vector<std::string> &Comments) {
  std::string Out;
  for (const std::string &Comment : Comments)
    Out += "c " + Comment + "\n";
  Out += format("p cnf %d %zu\n", Formula.NumVars, Formula.Clauses.size());
  for (const std::vector<Lit> &Clause : Formula.Clauses) {
    for (Lit L : Clause)
      Out += format("%d ", (L.var() + 1) * (L.sign() ? -1 : 1));
    Out += "0\n";
  }
  return Out;
}

std::string psketch::sat::writeDimacs(const Cnf &Formula) {
  return writeDimacs(Formula, {});
}

Cnf psketch::sat::exportCnf(const Solver &S) {
  Cnf Out;
  Out.NumVars = S.numVars();
  S.exportClauses(Out.Clauses);
  return Out;
}

bool psketch::sat::loadCnf(const Cnf &Formula, Solver &SolverOut) {
  while (SolverOut.numVars() < Formula.NumVars)
    SolverOut.newVar();
  for (const std::vector<Lit> &Clause : Formula.Clauses)
    if (!SolverOut.addClause(Clause))
      return false;
  return true;
}
