//===- sat/Solver.cpp - A CDCL SAT solver ----------------------------------===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"

#include <algorithm>
#include <cassert>

using namespace psketch;
using namespace psketch::sat;

Solver::Solver() = default;

Solver::~Solver() {
  for (Clause *C : Problem)
    delete C;
  for (Clause *C : Learnts)
    delete C;
}

Var Solver::newVar() {
  Var V = static_cast<Var>(Assigns.size());
  Assigns.push_back(LBool::Undef);
  Polarity.push_back(1); // default phase: false, as in MiniSat
  Activity.push_back(0.0);
  Level.push_back(0);
  Reason.push_back(nullptr);
  Seen.push_back(0);
  HeapIndex.push_back(-1);
  Watches.emplace_back();
  Watches.emplace_back();
  heapInsert(V);
  return V;
}

//===----------------------------------------------------------------------===//
// Branching heap (binary max-heap keyed on Activity).
//===----------------------------------------------------------------------===//

void Solver::heapInsert(Var V) {
  assert(HeapIndex[V] < 0 && "variable already in heap");
  HeapIndex[V] = static_cast<int>(Heap.size());
  Heap.push_back(V);
  heapPercolateUp(HeapIndex[V]);
}

void Solver::heapPercolateUp(int Index) {
  Var V = Heap[Index];
  while (Index > 0) {
    int Parent = (Index - 1) / 2;
    if (Activity[Heap[Parent]] >= Activity[V])
      break;
    Heap[Index] = Heap[Parent];
    HeapIndex[Heap[Index]] = Index;
    Index = Parent;
  }
  Heap[Index] = V;
  HeapIndex[V] = Index;
}

void Solver::heapPercolateDown(int Index) {
  Var V = Heap[Index];
  int Size = static_cast<int>(Heap.size());
  for (;;) {
    int Child = 2 * Index + 1;
    if (Child >= Size)
      break;
    if (Child + 1 < Size && Activity[Heap[Child + 1]] > Activity[Heap[Child]])
      ++Child;
    if (Activity[Heap[Child]] <= Activity[V])
      break;
    Heap[Index] = Heap[Child];
    HeapIndex[Heap[Index]] = Index;
    Index = Child;
  }
  Heap[Index] = V;
  HeapIndex[V] = Index;
}

Var Solver::heapRemoveMax() {
  assert(!Heap.empty() && "removing from an empty heap");
  Var Top = Heap[0];
  HeapIndex[Top] = -1;
  Var Last = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    Heap[0] = Last;
    HeapIndex[Last] = 0;
    heapPercolateDown(0);
  }
  return Top;
}

void Solver::varBumpActivity(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (heapContains(V))
    heapPercolateUp(HeapIndex[V]);
}

void Solver::claBumpActivity(Clause &C) {
  C.Activity += ClauseInc;
  if (C.Activity > 1e20) {
    for (Clause *L : Learnts)
      L->Activity *= 1e-20;
    ClauseInc *= 1e-20;
  }
}

//===----------------------------------------------------------------------===//
// Clause database.
//===----------------------------------------------------------------------===//

void Solver::attachClause(Clause *C) {
  assert(C->size() >= 2 && "attaching too-short clause");
  Watches[(~(*C)[0]).index()].push_back(Watcher{C, (*C)[1]});
  Watches[(~(*C)[1]).index()].push_back(Watcher{C, (*C)[0]});
}

void Solver::detachClause(Clause *C) {
  for (int Slot = 0; Slot < 2; ++Slot) {
    std::vector<Watcher> &List = Watches[(~(*C)[Slot]).index()];
    for (size_t I = 0; I < List.size(); ++I) {
      if (List[I].C != C)
        continue;
      List[I] = List.back();
      List.pop_back();
      break;
    }
  }
}

bool Solver::addClause(std::vector<Lit> Lits) {
  cancelUntil(0);
  if (!Ok)
    return false;

  // Normalize: sort, deduplicate, detect tautologies, drop root-false
  // literals, and notice root-true literals.
  std::sort(Lits.begin(), Lits.end());
  std::vector<Lit> Kept;
  Lit Prev = litUndef();
  for (Lit L : Lits) {
    assert(L.var() < numVars() && "clause mentions unknown variable");
    if (value(L) == LBool::True || L == ~Prev)
      return true; // clause is already satisfied / tautological
    if (value(L) == LBool::False || L == Prev)
      continue; // literal can never help / duplicate
    Kept.push_back(L);
    Prev = L;
  }

  if (Kept.empty()) {
    Ok = false;
    return false;
  }
  if (Kept.size() == 1) {
    uncheckedEnqueue(Kept[0], nullptr);
    if (propagate() != nullptr)
      Ok = false;
    return Ok;
  }

  Clause *C = new Clause();
  C->Lits = std::move(Kept);
  Problem.push_back(C);
  ++NumProblemClauses;
  attachClause(C);
  return true;
}

void Solver::uncheckedEnqueue(Lit L, Clause *From) {
  assert(value(L) == LBool::Undef && "enqueueing assigned literal");
  Var V = L.var();
  Assigns[V] = boolToLBool(!L.sign());
  Level[V] = decisionLevel();
  Reason[V] = From;
  Trail.push_back(L);
  ++Stats.Propagations;
}

Clause *Solver::propagate() {
  Clause *Conflict = nullptr;
  while (PropagateHead < Trail.size()) {
    Lit P = Trail[PropagateHead++]; // P is now true
    std::vector<Watcher> &List = Watches[P.index()];
    size_t Read = 0, Write = 0;
    while (Read < List.size()) {
      Watcher W = List[Read];
      // Cheap out: if the cached blocker is true, the clause is satisfied.
      if (value(W.Blocker) == LBool::True) {
        List[Write++] = List[Read++];
        continue;
      }
      Clause &C = *W.C;
      Lit FalseLit = ~P;
      if (C[0] == FalseLit)
        std::swap(C[0], C[1]);
      assert(C[1] == FalseLit && "watch invariant broken");
      ++Read;

      Lit First = C[0];
      if (First != W.Blocker && value(First) == LBool::True) {
        List[Write++] = Watcher{W.C, First};
        continue;
      }

      // Look for a replacement watch.
      bool Rewatched = false;
      for (size_t K = 2; K < C.size(); ++K) {
        if (value(C[K]) == LBool::False)
          continue;
        std::swap(C[1], C[K]);
        Watches[(~C[1]).index()].push_back(Watcher{W.C, First});
        Rewatched = true;
        break;
      }
      if (Rewatched)
        continue;

      // Clause is unit or conflicting under the current assignment.
      List[Write++] = Watcher{W.C, First};
      if (value(First) == LBool::False) {
        Conflict = W.C;
        PropagateHead = Trail.size();
        while (Read < List.size())
          List[Write++] = List[Read++];
      } else {
        uncheckedEnqueue(First, W.C);
      }
    }
    List.resize(Write);
  }
  return Conflict;
}

//===----------------------------------------------------------------------===//
// Conflict analysis (first UIP with recursive clause minimization).
//===----------------------------------------------------------------------===//

static uint32_t abstractLevel(int Level) {
  return 1u << (Level & 31);
}

bool Solver::litRedundant(Lit P, uint32_t AbstractLevels) {
  AnalyzeStack.clear();
  AnalyzeStack.push_back(P);
  size_t Checkpoint = AnalyzeToClear.size();
  while (!AnalyzeStack.empty()) {
    Lit X = AnalyzeStack.back();
    AnalyzeStack.pop_back();
    assert(Reason[X.var()] && "redundancy check hit a decision literal");
    Clause &C = *Reason[X.var()];
    for (size_t I = 1; I < C.size(); ++I) {
      Lit Q = C[I];
      if (Seen[Q.var()] || Level[Q.var()] == 0)
        continue;
      if (Reason[Q.var()] != nullptr &&
          (abstractLevel(Level[Q.var()]) & AbstractLevels) != 0) {
        Seen[Q.var()] = 1;
        AnalyzeStack.push_back(Q);
        AnalyzeToClear.push_back(Q);
        continue;
      }
      // Not redundant: undo the speculative marks.
      for (size_t J = Checkpoint; J < AnalyzeToClear.size(); ++J)
        Seen[AnalyzeToClear[J].var()] = 0;
      AnalyzeToClear.resize(Checkpoint);
      return false;
    }
  }
  return true;
}

void Solver::analyze(Clause *Conflict, std::vector<Lit> &Learnt,
                     int &BacktrackLevel, uint32_t &LBD) {
  Learnt.clear();
  Learnt.push_back(litUndef()); // slot for the asserting literal
  AnalyzeToClear.clear();

  int Pending = 0;
  Lit P = litUndef();
  int TrailIndex = static_cast<int>(Trail.size()) - 1;

  do {
    assert(Conflict && "no reason clause during analysis");
    Clause &C = *Conflict;
    if (C.Learnt)
      claBumpActivity(C);
    for (size_t I = (P == litUndef()) ? 0 : 1; I < C.size(); ++I) {
      Lit Q = C[I];
      Var V = Q.var();
      if (Seen[V] || Level[V] == 0)
        continue;
      varBumpActivity(V);
      Seen[V] = 1;
      AnalyzeToClear.push_back(Q);
      if (Level[V] >= decisionLevel())
        ++Pending;
      else
        Learnt.push_back(Q);
    }
    // Walk back to the next marked literal on the trail.
    while (!Seen[Trail[TrailIndex--].var()])
      ;
    P = Trail[TrailIndex + 1];
    Conflict = Reason[P.var()];
    Seen[P.var()] = 0;
    --Pending;
  } while (Pending > 0);
  Learnt[0] = ~P;

  // Minimize: drop literals implied by the remainder of the clause.
  uint32_t AbstractLevels = 0;
  for (size_t I = 1; I < Learnt.size(); ++I)
    AbstractLevels |= abstractLevel(Level[Learnt[I].var()]);
  size_t Write = 1;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    if (Reason[Learnt[I].var()] == nullptr ||
        !litRedundant(Learnt[I], AbstractLevels))
      Learnt[Write++] = Learnt[I];
  }
  Learnt.resize(Write);

  // Compute the backtrack level and move its literal to slot 1.
  if (Learnt.size() == 1) {
    BacktrackLevel = 0;
  } else {
    size_t MaxIndex = 1;
    for (size_t I = 2; I < Learnt.size(); ++I)
      if (Level[Learnt[I].var()] > Level[Learnt[MaxIndex].var()])
        MaxIndex = I;
    std::swap(Learnt[1], Learnt[MaxIndex]);
    BacktrackLevel = Level[Learnt[1].var()];
  }

  // Literal-block distance: the number of distinct decision levels.
  std::vector<int> Levels;
  Levels.reserve(Learnt.size());
  for (Lit L : Learnt)
    Levels.push_back(Level[L.var()]);
  std::sort(Levels.begin(), Levels.end());
  LBD = static_cast<uint32_t>(
      std::unique(Levels.begin(), Levels.end()) - Levels.begin());

  for (Lit L : AnalyzeToClear)
    Seen[L.var()] = 0;
  AnalyzeToClear.clear();
}

void Solver::cancelUntil(int TargetLevel) {
  if (decisionLevel() <= TargetLevel)
    return;
  for (int I = static_cast<int>(Trail.size()) - 1; I >= TrailLim[TargetLevel];
       --I) {
    Var V = Trail[I].var();
    Assigns[V] = LBool::Undef;
    Polarity[V] = static_cast<char>(Trail[I].sign());
    Reason[V] = nullptr;
    if (!heapContains(V))
      heapInsert(V);
  }
  PropagateHead = static_cast<size_t>(TrailLim[TargetLevel]);
  Trail.resize(static_cast<size_t>(TrailLim[TargetLevel]));
  TrailLim.resize(static_cast<size_t>(TargetLevel));
}

Lit Solver::pickBranchLit() {
  while (!Heap.empty()) {
    Var V = heapRemoveMax();
    if (value(V) == LBool::Undef)
      return Lit(V, Polarity[V] != 0);
  }
  return litUndef();
}

void Solver::reduceDB() {
  // Delete-first ordering: high LBD, then low activity.
  std::sort(Learnts.begin(), Learnts.end(), [](Clause *A, Clause *B) {
    if (A->LBD != B->LBD)
      return A->LBD > B->LBD;
    return A->Activity < B->Activity;
  });
  auto IsLocked = [this](Clause *C) {
    return Reason[(*C)[0].var()] == C && value((*C)[0]) == LBool::True;
  };
  size_t Target = Learnts.size() / 2;
  size_t Write = 0;
  for (size_t I = 0; I < Learnts.size(); ++I) {
    Clause *C = Learnts[I];
    bool Deletable = I < Target && C->size() > 2 && C->LBD > 2 && !IsLocked(C);
    if (Deletable) {
      detachClause(C);
      delete C;
      ++Stats.DeletedClauses;
      continue;
    }
    Learnts[Write++] = C;
  }
  Learnts.resize(Write);
}

void Solver::removeSatisfiedLearnts() {
  assert(decisionLevel() == 0 && "root-level simplification only");
  // Root-level assignments never need their reasons again; clearing them
  // here keeps the clause database free to delete any satisfied clause.
  for (Lit L : Trail)
    Reason[L.var()] = nullptr;
  auto IsSatisfied = [this](Clause *C) {
    for (Lit L : C->Lits)
      if (value(L) == LBool::True)
        return true;
    return false;
  };
  size_t Write = 0;
  for (Clause *C : Learnts) {
    if (IsSatisfied(C)) {
      detachClause(C);
      delete C;
      ++Stats.DeletedClauses;
      continue;
    }
    Learnts[Write++] = C;
  }
  Learnts.resize(Write);
}

//===----------------------------------------------------------------------===//
// Search.
//===----------------------------------------------------------------------===//

uint64_t psketch::sat::lubySequence(uint64_t Index) {
  // Find the finite subsequence containing Index and its position in it.
  uint64_t Size = 1, Seq = 0;
  while (Size < Index + 1) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != Index) {
    Size = (Size - 1) >> 1;
    --Seq;
    Index = Index % Size;
  }
  return 1ull << Seq;
}

bool Solver::search(uint64_t ConflictsBeforeRestart, bool &DoneOut) {
  DoneOut = true;
  uint64_t LocalConflicts = 0;
  std::vector<Lit> Learnt;

  for (;;) {
    Clause *Conflict = propagate();
    if (Conflict != nullptr) {
      ++Stats.Conflicts;
      ++LocalConflicts;
      if (decisionLevel() == 0) {
        Ok = false;
        return false;
      }

      int BacktrackLevel = 0;
      uint32_t LBD = 0;
      analyze(Conflict, Learnt, BacktrackLevel, LBD);
      cancelUntil(BacktrackLevel);

      if (Learnt.size() == 1) {
        uncheckedEnqueue(Learnt[0], nullptr);
      } else {
        Clause *C = new Clause();
        C->Lits = Learnt;
        C->Learnt = true;
        C->LBD = LBD;
        Learnts.push_back(C);
        attachClause(C);
        claBumpActivity(*C);
        uncheckedEnqueue(Learnt[0], C);
      }
      Stats.LearntLiterals += Learnt.size();
      varDecayActivity();
      claDecayActivity();

      if (ConflictBudget != 0 &&
          Stats.Conflicts - SolveStartConflicts >= ConflictBudget) {
        BudgetExhausted = true;
        cancelUntil(0);
        return false;
      }
      continue;
    }

    // No conflict.
    if (LocalConflicts >= ConflictsBeforeRestart) {
      ++Stats.Restarts;
      cancelUntil(0);
      DoneOut = false;
      return false;
    }
    if (static_cast<double>(Learnts.size()) >= MaxLearnts) {
      reduceDB();
      MaxLearnts *= 1.1;
    }

    // Respect assumptions, then branch.
    Lit Next = litUndef();
    while (decisionLevel() < static_cast<int>(CurrentAssumptions.size())) {
      Lit Assumption = CurrentAssumptions[decisionLevel()];
      if (value(Assumption) == LBool::True) {
        // Already satisfied: open a dummy decision level to keep the
        // level/assumption correspondence.
        TrailLim.push_back(static_cast<int>(Trail.size()));
        continue;
      }
      if (value(Assumption) == LBool::False)
        return false; // unsatisfiable under the assumptions
      Next = Assumption;
      break;
    }

    if (Next == litUndef()) {
      Next = pickBranchLit();
      if (Next == litUndef()) {
        Model = Assigns; // full model found
        return true;
      }
      ++Stats.Decisions;
    }
    TrailLim.push_back(static_cast<int>(Trail.size()));
    uncheckedEnqueue(Next, nullptr);
  }
}

bool Solver::solve() { return solve(std::vector<Lit>()); }

bool Solver::solve(const std::vector<Lit> &Assumptions) {
  Model.clear();
  BudgetExhausted = false;
  if (!Ok)
    return false;

  cancelUntil(0);
  if (propagate() != nullptr) {
    Ok = false;
    return false;
  }
  removeSatisfiedLearnts();

  CurrentAssumptions = Assumptions;
  SolveStartConflicts = Stats.Conflicts;
  MaxLearnts =
      std::max(MaxLearnts, static_cast<double>(NumProblemClauses) / 3.0 + 2000);

  bool Result = false;
  bool Done = false;
  for (uint64_t Round = 0; !Done; ++Round) {
    uint64_t Budget = 100 * lubySequence(Round);
    Result = search(Budget, Done);
    if (BudgetExhausted)
      break;
  }
  cancelUntil(0);
  CurrentAssumptions.clear();
  return Result;
}

LBool Solver::modelValue(Var V) const {
  if (V < 0 || static_cast<size_t>(V) >= Model.size())
    return LBool::Undef;
  return Model[V];
}
