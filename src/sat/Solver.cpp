//===- sat/Solver.cpp - A CDCL SAT solver ----------------------------------===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"

#include <algorithm>
#include <cassert>

using namespace psketch;
using namespace psketch::sat;

Solver::Solver() = default;

Solver::~Solver() {
  for (Clause *C : Problem)
    delete C;
  for (Clause *C : Learnts)
    delete C;
}

Var Solver::newVar() {
  Var V = static_cast<Var>(Assigns.size());
  Assigns.push_back(LBool::Undef);
  Polarity.push_back(1); // default phase: false, as in MiniSat
  Activity.push_back(0.0);
  Level.push_back(0);
  Reason.push_back(nullptr);
  Seen.push_back(0);
  HeapIndex.push_back(-1);
  Watches.emplace_back();
  Watches.emplace_back();
  heapInsert(V);
  return V;
}

//===----------------------------------------------------------------------===//
// Branching heap (binary max-heap keyed on Activity).
//===----------------------------------------------------------------------===//

void Solver::heapInsert(Var V) {
  assert(HeapIndex[V] < 0 && "variable already in heap");
  HeapIndex[V] = static_cast<int>(Heap.size());
  Heap.push_back(V);
  heapPercolateUp(HeapIndex[V]);
}

void Solver::heapPercolateUp(int Index) {
  Var V = Heap[Index];
  while (Index > 0) {
    int Parent = (Index - 1) / 2;
    if (Activity[Heap[Parent]] >= Activity[V])
      break;
    Heap[Index] = Heap[Parent];
    HeapIndex[Heap[Index]] = Index;
    Index = Parent;
  }
  Heap[Index] = V;
  HeapIndex[V] = Index;
}

void Solver::heapPercolateDown(int Index) {
  Var V = Heap[Index];
  int Size = static_cast<int>(Heap.size());
  for (;;) {
    int Child = 2 * Index + 1;
    if (Child >= Size)
      break;
    if (Child + 1 < Size && Activity[Heap[Child + 1]] > Activity[Heap[Child]])
      ++Child;
    if (Activity[Heap[Child]] <= Activity[V])
      break;
    Heap[Index] = Heap[Child];
    HeapIndex[Heap[Index]] = Index;
    Index = Child;
  }
  Heap[Index] = V;
  HeapIndex[V] = Index;
}

Var Solver::heapRemoveMax() {
  assert(!Heap.empty() && "removing from an empty heap");
  Var Top = Heap[0];
  HeapIndex[Top] = -1;
  Var Last = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    Heap[0] = Last;
    HeapIndex[Last] = 0;
    heapPercolateDown(0);
  }
  return Top;
}

void Solver::varBumpActivity(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (heapContains(V))
    heapPercolateUp(HeapIndex[V]);
}

void Solver::claBumpActivity(Clause &C) {
  C.Activity += ClauseInc;
  if (C.Activity > 1e20) {
    for (Clause *L : Learnts)
      L->Activity *= 1e-20;
    ClauseInc *= 1e-20;
  }
}

//===----------------------------------------------------------------------===//
// Clause database.
//===----------------------------------------------------------------------===//

void Solver::attachClause(Clause *C) {
  assert(C->size() >= 2 && "attaching too-short clause");
  Watches[(~(*C)[0]).index()].push_back(Watcher{C, (*C)[1]});
  Watches[(~(*C)[1]).index()].push_back(Watcher{C, (*C)[0]});
}

void Solver::detachClause(Clause *C) {
  for (int Slot = 0; Slot < 2; ++Slot) {
    std::vector<Watcher> &List = Watches[(~(*C)[Slot]).index()];
    for (size_t I = 0; I < List.size(); ++I) {
      if (List[I].C != C)
        continue;
      List[I] = List.back();
      List.pop_back();
      break;
    }
  }
}

bool Solver::addClause(std::vector<Lit> Lits) {
  if (!WarmStart)
    cancelUntil(0);
  if (!Ok)
    return false;

  // Normalize: sort, deduplicate, detect tautologies, drop root-false
  // literals, and notice root-true literals. Under warm start the trail
  // may be live, so only root-level (level-0) assignments may simplify
  // the clause — higher-level assignments are search state, not facts.
  // At decision level 0 rootValue() and value() coincide, so the legacy
  // path is unchanged.
  std::sort(Lits.begin(), Lits.end());
  std::vector<Lit> Kept;
  Lit Prev = litUndef();
  for (Lit L : Lits) {
    assert(L.var() < numVars() && "clause mentions unknown variable");
    if (rootValue(L) == LBool::True || L == ~Prev)
      return true; // clause is already satisfied / tautological
    if (rootValue(L) == LBool::False || L == Prev)
      continue; // literal can never help / duplicate
    Kept.push_back(L);
    Prev = L;
  }

  if (Kept.empty()) {
    Ok = false;
    return false;
  }
  if (Kept.size() == 1)
    return addUnitClause(Kept[0]);
  if (decisionLevel() > 0)
    return attachWarm(std::move(Kept)); // warm start with a live trail

  Clause *C = new Clause();
  C->Lits = std::move(Kept);
  Problem.push_back(C);
  ++NumProblemClauses;
  attachClause(C);
  return true;
}

bool Solver::addUnitClause(Lit L) {
  // Units are root facts: they always live at decision level 0, where
  // the trail records them without a stored clause. Under warm start the
  // undone decisions are saved first so the next search can replay them.
  if (decisionLevel() > 0) {
    saveReplay();
    cancelUntil(0);
    if (value(L) == LBool::True)
      return true;
    if (value(L) == LBool::False) {
      Ok = false;
      return false;
    }
  }
  uncheckedEnqueue(L, nullptr);
  if (propagate() != nullptr)
    Ok = false;
  return Ok;
}

bool Solver::attachWarm(std::vector<Lit> Kept) {
  // Adding a clause while the trail is live (docs/SOLVER.md). The watches
  // go on the two "best" literals — non-false ones first, then the
  // deepest false levels, so a future backtrack un-falsifies the watched
  // slots first — and the solver backtracks only as far as the clause
  // forces: not at all when two literals are non-false, an in-place
  // propagation when the clause is unit under the trail, and past the
  // deepest false level when it is falsified outright.
  auto WatchRank = [this](Lit L) {
    return value(L) == LBool::False ? Level[L.var()] : numVars() + 1;
  };
  auto PlaceWatches = [&]() {
    for (size_t Slot = 0; Slot < 2; ++Slot) {
      size_t Best = Slot;
      for (size_t I = Slot + 1; I < Kept.size(); ++I)
        if (WatchRank(Kept[I]) > WatchRank(Kept[Best]))
          Best = I;
      std::swap(Kept[Slot], Kept[Best]);
    }
  };

  PlaceWatches();
  if (value(Kept[0]) == LBool::False) {
    // Falsified under the current trail: undo to the deepest level where
    // the clause regains an unassigned literal. When the two deepest
    // false literals share a level, backtracking below it frees both.
    saveReplay();
    int Deepest = Level[Kept[0].var()];
    int Second = Level[Kept[1].var()];
    cancelUntil(std::max(Second == Deepest ? Deepest - 1 : Second, 0));
    PlaceWatches();
  }

  Clause *C = new Clause();
  C->Lits = std::move(Kept);
  Problem.push_back(C);
  ++NumProblemClauses;
  attachClause(C);

  const Clause &Ref = *C;
  if (value(Ref[0]) == LBool::Undef && value(Ref[1]) == LBool::False) {
    // Unit under the trail: propagate in place at the current level.
    uncheckedEnqueue(Ref[0], C);
    if (propagate() != nullptr) {
      // The forced literal conflicts with the trail. There is no search
      // frame to learn in, so fall back to the root; the next solve
      // rebuilds the useful prefix from the replay queue.
      saveReplay();
      cancelUntil(0);
      if (propagate() != nullptr)
        Ok = false;
    }
  }
  return Ok;
}

void Solver::saveReplay() {
  if (!WarmStart)
    return;
  ReplayQueue.clear();
  ReplayHead = 0;
  for (size_t Lvl = 0; Lvl < TrailLim.size(); ++Lvl) {
    size_t Begin = static_cast<size_t>(TrailLim[Lvl]);
    size_t End = Lvl + 1 < TrailLim.size()
                     ? static_cast<size_t>(TrailLim[Lvl + 1])
                     : Trail.size();
    if (Begin >= End)
      continue; // dummy level opened for an already-satisfied assumption
    Lit D = Trail[Begin];
    if (Reason[D.var()] == nullptr)
      ReplayQueue.push_back(D);
  }
}

void Solver::setWarmStart(bool Enabled) {
  if (!Enabled && WarmStart) {
    // Leave the solver exactly where a from-scratch solve would expect
    // it: at the root with no pending replay.
    cancelUntil(0);
    ReplayQueue.clear();
    ReplayHead = 0;
  }
  WarmStart = Enabled;
}

void Solver::uncheckedEnqueue(Lit L, Clause *From) {
  assert(value(L) == LBool::Undef && "enqueueing assigned literal");
  Var V = L.var();
  Assigns[V] = boolToLBool(!L.sign());
  Level[V] = decisionLevel();
  Reason[V] = From;
  Trail.push_back(L);
  ++Stats.Propagations;
}

Clause *Solver::propagate() {
  Clause *Conflict = nullptr;
  while (PropagateHead < Trail.size()) {
    Lit P = Trail[PropagateHead++]; // P is now true
    std::vector<Watcher> &List = Watches[P.index()];
    size_t Read = 0, Write = 0;
    while (Read < List.size()) {
      Watcher W = List[Read];
      // Cheap out: if the cached blocker is true, the clause is satisfied.
      if (value(W.Blocker) == LBool::True) {
        List[Write++] = List[Read++];
        continue;
      }
      Clause &C = *W.C;
      Lit FalseLit = ~P;
      if (C[0] == FalseLit)
        std::swap(C[0], C[1]);
      assert(C[1] == FalseLit && "watch invariant broken");
      ++Read;

      Lit First = C[0];
      if (First != W.Blocker && value(First) == LBool::True) {
        List[Write++] = Watcher{W.C, First};
        continue;
      }

      // Look for a replacement watch.
      bool Rewatched = false;
      for (size_t K = 2; K < C.size(); ++K) {
        if (value(C[K]) == LBool::False)
          continue;
        std::swap(C[1], C[K]);
        Watches[(~C[1]).index()].push_back(Watcher{W.C, First});
        Rewatched = true;
        break;
      }
      if (Rewatched)
        continue;

      // Clause is unit or conflicting under the current assignment.
      List[Write++] = Watcher{W.C, First};
      if (value(First) == LBool::False) {
        Conflict = W.C;
        PropagateHead = Trail.size();
        while (Read < List.size())
          List[Write++] = List[Read++];
      } else {
        uncheckedEnqueue(First, W.C);
      }
    }
    List.resize(Write);
  }
  return Conflict;
}

//===----------------------------------------------------------------------===//
// Conflict analysis (first UIP with recursive clause minimization).
//===----------------------------------------------------------------------===//

static uint32_t abstractLevel(int Level) {
  return 1u << (Level & 31);
}

bool Solver::litRedundant(Lit P, uint32_t AbstractLevels) {
  AnalyzeStack.clear();
  AnalyzeStack.push_back(P);
  size_t Checkpoint = AnalyzeToClear.size();
  while (!AnalyzeStack.empty()) {
    Lit X = AnalyzeStack.back();
    AnalyzeStack.pop_back();
    assert(Reason[X.var()] && "redundancy check hit a decision literal");
    Clause &C = *Reason[X.var()];
    for (size_t I = 1; I < C.size(); ++I) {
      Lit Q = C[I];
      if (Seen[Q.var()] || Level[Q.var()] == 0)
        continue;
      if (Reason[Q.var()] != nullptr &&
          (abstractLevel(Level[Q.var()]) & AbstractLevels) != 0) {
        Seen[Q.var()] = 1;
        AnalyzeStack.push_back(Q);
        AnalyzeToClear.push_back(Q);
        continue;
      }
      // Not redundant: undo the speculative marks.
      for (size_t J = Checkpoint; J < AnalyzeToClear.size(); ++J)
        Seen[AnalyzeToClear[J].var()] = 0;
      AnalyzeToClear.resize(Checkpoint);
      return false;
    }
  }
  return true;
}

void Solver::analyze(Clause *Conflict, std::vector<Lit> &Learnt,
                     int &BacktrackLevel, uint32_t &LBD) {
  Learnt.clear();
  Learnt.push_back(litUndef()); // slot for the asserting literal
  AnalyzeToClear.clear();

  int Pending = 0;
  Lit P = litUndef();
  int TrailIndex = static_cast<int>(Trail.size()) - 1;

  do {
    assert(Conflict && "no reason clause during analysis");
    Clause &C = *Conflict;
    if (C.Learnt)
      claBumpActivity(C);
    for (size_t I = (P == litUndef()) ? 0 : 1; I < C.size(); ++I) {
      Lit Q = C[I];
      Var V = Q.var();
      if (Seen[V] || Level[V] == 0)
        continue;
      varBumpActivity(V);
      Seen[V] = 1;
      AnalyzeToClear.push_back(Q);
      if (Level[V] >= decisionLevel())
        ++Pending;
      else
        Learnt.push_back(Q);
    }
    // Walk back to the next marked literal on the trail.
    while (!Seen[Trail[TrailIndex--].var()])
      ;
    P = Trail[TrailIndex + 1];
    Conflict = Reason[P.var()];
    Seen[P.var()] = 0;
    --Pending;
  } while (Pending > 0);
  Learnt[0] = ~P;

  // Minimize: drop literals implied by the remainder of the clause.
  uint32_t AbstractLevels = 0;
  for (size_t I = 1; I < Learnt.size(); ++I)
    AbstractLevels |= abstractLevel(Level[Learnt[I].var()]);
  size_t Write = 1;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    if (Reason[Learnt[I].var()] == nullptr ||
        !litRedundant(Learnt[I], AbstractLevels))
      Learnt[Write++] = Learnt[I];
  }
  Learnt.resize(Write);

  // Compute the backtrack level and move its literal to slot 1.
  if (Learnt.size() == 1) {
    BacktrackLevel = 0;
  } else {
    size_t MaxIndex = 1;
    for (size_t I = 2; I < Learnt.size(); ++I)
      if (Level[Learnt[I].var()] > Level[Learnt[MaxIndex].var()])
        MaxIndex = I;
    std::swap(Learnt[1], Learnt[MaxIndex]);
    BacktrackLevel = Level[Learnt[1].var()];
  }

  // Literal-block distance: the number of distinct decision levels.
  std::vector<int> Levels;
  Levels.reserve(Learnt.size());
  for (Lit L : Learnt)
    Levels.push_back(Level[L.var()]);
  std::sort(Levels.begin(), Levels.end());
  LBD = static_cast<uint32_t>(
      std::unique(Levels.begin(), Levels.end()) - Levels.begin());

  for (Lit L : AnalyzeToClear)
    Seen[L.var()] = 0;
  AnalyzeToClear.clear();
}

void Solver::cancelUntil(int TargetLevel) {
  if (decisionLevel() <= TargetLevel)
    return;
  for (int I = static_cast<int>(Trail.size()) - 1; I >= TrailLim[TargetLevel];
       --I) {
    Var V = Trail[I].var();
    Assigns[V] = LBool::Undef;
    Polarity[V] = static_cast<char>(Trail[I].sign());
    Reason[V] = nullptr;
    if (!heapContains(V))
      heapInsert(V);
  }
  PropagateHead = static_cast<size_t>(TrailLim[TargetLevel]);
  Trail.resize(static_cast<size_t>(TrailLim[TargetLevel]));
  TrailLim.resize(static_cast<size_t>(TargetLevel));
}

Lit Solver::pickBranchLit() {
  while (!Heap.empty()) {
    Var V = heapRemoveMax();
    if (value(V) == LBool::Undef)
      return Lit(V, Polarity[V] != 0);
  }
  return litUndef();
}

void Solver::reduceDB() {
  // Delete-first ordering: high LBD, then low activity.
  std::sort(Learnts.begin(), Learnts.end(), [](Clause *A, Clause *B) {
    if (A->LBD != B->LBD)
      return A->LBD > B->LBD;
    return A->Activity < B->Activity;
  });
  auto IsLocked = [this](Clause *C) {
    return Reason[(*C)[0].var()] == C && value((*C)[0]) == LBool::True;
  };
  size_t Target = Learnts.size() / 2;
  size_t Write = 0;
  for (size_t I = 0; I < Learnts.size(); ++I) {
    Clause *C = Learnts[I];
    bool Deletable = I < Target && C->size() > 2 && C->LBD > 2 && !IsLocked(C);
    if (Deletable) {
      detachClause(C);
      delete C;
      ++Stats.DeletedClauses;
      continue;
    }
    Learnts[Write++] = C;
  }
  Learnts.resize(Write);
}

void Solver::removeSatisfiedLearnts() {
  assert(decisionLevel() == 0 && "root-level simplification only");
  // Root-level assignments never need their reasons again; clearing them
  // here keeps the clause database free to delete any satisfied clause.
  for (Lit L : Trail)
    Reason[L.var()] = nullptr;
  auto IsSatisfied = [this](Clause *C) {
    for (Lit L : C->Lits)
      if (value(L) == LBool::True)
        return true;
    return false;
  };
  size_t Write = 0;
  for (Clause *C : Learnts) {
    if (IsSatisfied(C)) {
      detachClause(C);
      delete C;
      ++Stats.DeletedClauses;
      continue;
    }
    Learnts[Write++] = C;
  }
  Learnts.resize(Write);
}

//===----------------------------------------------------------------------===//
// Inprocessing (warm start): root-level simplification between solves.
//===----------------------------------------------------------------------===//

bool Solver::reinstallRoot(Clause *C, bool IsProblem) {
  // Re-admit a currently-detached clause under the live root assignment:
  // delete it when satisfied, strip false literals, promote a survivor
  // of one literal to a root fact. \returns true iff the clause was
  // re-attached (the caller keeps it in its database).
  assert(decisionLevel() == 0 && "root-level reinstall only");
  auto Drop = [&]() {
    if (IsProblem)
      --NumProblemClauses;
    else
      ++Stats.DeletedClauses;
    delete C;
    return false;
  };
  for (Lit L : C->Lits)
    if (value(L) == LBool::True) {
      ++IStats.RemovedSatisfied;
      return Drop();
    }
  C->Lits.erase(std::remove_if(C->Lits.begin(), C->Lits.end(),
                               [this](Lit L) {
                                 return value(L) == LBool::False;
                               }),
                C->Lits.end());
  if (C->Lits.empty()) {
    Ok = false;
    return Drop();
  }
  if (C->Lits.size() == 1) {
    Lit Unit = (*C)[0];
    uncheckedEnqueue(Unit, nullptr);
    if (propagate() != nullptr)
      Ok = false;
    return Drop();
  }
  attachClause(C);
  return true;
}

void Solver::sweepSatisfied() {
  // The warm-start replacement for the per-solve removeSatisfiedLearnts:
  // also sweeps satisfied *problem* clauses, which appear when a closed
  // constraint scope's activation literal is forced false (melted).
  auto SweepAll = [this](std::vector<Clause *> &Db, bool IsProblem) {
    size_t Write = 0;
    for (size_t I = 0; I < Db.size(); ++I) {
      Clause *C = Db[I];
      if (!Ok) { // root conflict: stop simplifying, keep the rest as-is
        Db[Write++] = C;
        continue;
      }
      bool Touched = false;
      for (Lit L : C->Lits)
        if (value(L) != LBool::Undef) {
          Touched = true;
          break;
        }
      if (!Touched) {
        Db[Write++] = C;
        continue;
      }
      detachClause(C);
      if (reinstallRoot(C, IsProblem))
        Db[Write++] = C;
    }
    Db.resize(Write);
  };
  SweepAll(Learnts, /*IsProblem=*/false);
  SweepAll(Problem, /*IsProblem=*/true);
}

void Solver::strengthenSelfSubsume() {
  // Binary self-subsumption: a binary (¬l ∨ m) with m ∈ C resolves l out
  // of C; a binary (l ∨ m) with l, m ∈ C subsumes C outright. Marks use
  // the Seen scratch per variable: 1 = positive literal in C, 2 =
  // negative.
  std::vector<std::vector<Lit>> Bin(Watches.size());
  auto Collect = [&](const std::vector<Clause *> &Db) {
    for (Clause *C : Db)
      if (C->size() == 2) {
        Bin[(*C)[0].index()].push_back((*C)[1]);
        Bin[(*C)[1].index()].push_back((*C)[0]);
      }
  };
  Collect(Problem);
  Collect(Learnts);

  auto Marked = [this](Lit L) {
    return Seen[L.var()] == (L.sign() ? 2 : 1);
  };
  // Partner scans are budgeted: hub literals (hole bits) can have long
  // binary lists, and this pass must stay cheap relative to the solves
  // it amortizes over.
  uint64_t ScanBudget = 2u << 20;

  auto Process = [&](std::vector<Clause *> &Db, bool IsProblem) {
    size_t Write = 0;
    for (size_t I = 0; I < Db.size(); ++I) {
      Clause *C = Db[I];
      if (!Ok || ScanBudget == 0 || C->size() == 2) {
        Db[Write++] = C;
        continue;
      }
      for (Lit L : C->Lits)
        Seen[L.var()] = L.sign() ? 2 : 1;

      bool Subsumed = false;
      std::vector<Lit> Removable;
      for (Lit L : C->Lits) {
        for (Lit M : Bin[L.index()]) {
          if (ScanBudget > 0)
            --ScanBudget;
          if (Marked(M) && M != L) {
            Subsumed = true; // binary (L ∨ M) ⊆ C
            break;
          }
        }
        if (Subsumed)
          break;
        for (Lit M : Bin[(~L).index()]) {
          if (ScanBudget > 0)
            --ScanBudget;
          if (Marked(M) && M.var() != L.var()) {
            Removable.push_back(L); // resolve C with (¬L ∨ M) on L
            break;
          }
        }
      }
      for (Lit L : C->Lits)
        Seen[L.var()] = 0;

      if (Subsumed) {
        ++IStats.SubsumedClauses;
        detachClause(C);
        if (IsProblem)
          --NumProblemClauses;
        else
          ++Stats.DeletedClauses;
        delete C;
        continue;
      }
      if (Removable.empty() ||
          C->size() - Removable.size() < 2) { // keep at least a binary
        Db[Write++] = C;
        continue;
      }
      IStats.StrengthenedLits += Removable.size();
      detachClause(C);
      for (Lit L : Removable)
        C->Lits.erase(std::find(C->Lits.begin(), C->Lits.end(), L));
      if (reinstallRoot(C, IsProblem))
        Db[Write++] = C;
    }
    Db.resize(Write);
  };
  Process(Learnts, /*IsProblem=*/false);
  Process(Problem, /*IsProblem=*/true);
}

bool Solver::vivifyOne(Clause *C) {
  // Distillation: assume the negation of the clause literal by literal.
  // A conflict proves the assumed prefix is itself a clause; a literal
  // found true completes a shorter clause; a literal found false is
  // redundant. The clause is detached throughout so it cannot satisfy
  // itself via its own watches.
  assert(decisionLevel() == 0 && "root-level vivification only");
  detachClause(C);
  std::vector<Lit> Prefix;
  Prefix.reserve(C->size());
  for (size_t I = 0; I < C->Lits.size(); ++I) {
    Lit L = C->Lits[I];
    if (value(L) == LBool::True) {
      Prefix.push_back(L); // ¬prefix forces L: C shrinks to prefix + L
      break;
    }
    if (value(L) == LBool::False)
      continue; // ¬prefix refutes L: redundant
    if (I + 1 == C->Lits.size()) {
      Prefix.push_back(L); // last literal: nothing left to learn
      break;
    }
    TrailLim.push_back(static_cast<int>(Trail.size()));
    uncheckedEnqueue(~L, nullptr);
    Prefix.push_back(L);
    if (propagate() != nullptr)
      break; // ¬prefix is contradictory: prefix is a clause
  }
  cancelUntil(0);

  if (Prefix.size() >= C->Lits.size()) {
    attachClause(C);
    return true;
  }
  IStats.VivifiedLits += C->Lits.size() - Prefix.size();
  C->Lits = std::move(Prefix);
  C->LBD = std::min(C->LBD, static_cast<uint32_t>(C->Lits.size()));
  return reinstallRoot(C, /*IsProblem=*/false);
}

void Solver::vivify() {
  // Budgeted: vivification pays a propagation cone per literal, so cap
  // the pass by propagations and focus on the clauses reduceDB would
  // keep anyway (small, low-LBD).
  const uint64_t PropagationBudget = 200000;
  uint64_t Start = Stats.Propagations;
  size_t Write = 0;
  for (size_t I = 0; I < Learnts.size(); ++I) {
    Clause *C = Learnts[I];
    bool Keep = true;
    if (Ok && Stats.Propagations - Start < PropagationBudget &&
        C->size() >= 3 && C->size() <= 16 && C->LBD <= 6)
      Keep = vivifyOne(C);
    if (Keep)
      Learnts[Write++] = C;
  }
  Learnts.resize(Write);
}

void Solver::inprocess() {
  assert(decisionLevel() == 0 && "inprocessing is a root-level pass");
  if (!Ok)
    return;
  ++IStats.Passes;
  // Root assignments never need their reasons again; clearing them frees
  // every clause for deletion or rewriting.
  for (Lit L : Trail)
    Reason[L.var()] = nullptr;
  sweepSatisfied();
  if (Ok)
    strengthenSelfSubsume();
  if (Ok)
    vivify();
  // Learnt-DB policy tuned for incremental use: decay the budget so the
  // database tracks the live instance instead of ratcheting up forever.
  // (reduceDB keeps glue clauses — LBD <= 2 or binary — unconditionally.)
  MaxLearnts = std::max(static_cast<double>(NumProblemClauses) / 3.0 + 2000,
                        MaxLearnts * 0.95);
}

void Solver::exportClauses(std::vector<std::vector<Lit>> &Out) const {
  // A root-inconsistent instance may have dropped the offending clause
  // (a clause normalized to nothing is never stored): export the empty
  // clause so the snapshot is unsatisfiable like the live solver.
  if (!Ok) {
    Out.push_back({});
    return;
  }
  // Root facts first — addClause never stores unit clauses, it enqueues
  // them — then the problem clauses as currently stored (normalized
  // against those same root facts). Learnts are implied and omitted.
  size_t RootEnd =
      TrailLim.empty() ? Trail.size() : static_cast<size_t>(TrailLim[0]);
  for (size_t I = 0; I < RootEnd; ++I)
    Out.push_back({Trail[I]});
  for (const Clause *C : Problem)
    Out.push_back(C->Lits);
}

//===----------------------------------------------------------------------===//
// Search.
//===----------------------------------------------------------------------===//

uint64_t psketch::sat::lubySequence(uint64_t Index) {
  // Find the finite subsequence containing Index and its position in it.
  uint64_t Size = 1, Seq = 0;
  while (Size < Index + 1) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != Index) {
    Size = (Size - 1) >> 1;
    --Seq;
    Index = Index % Size;
  }
  return 1ull << Seq;
}

bool Solver::search(uint64_t ConflictsBeforeRestart, bool &DoneOut) {
  DoneOut = true;
  uint64_t LocalConflicts = 0;
  std::vector<Lit> Learnt;

  for (;;) {
    Clause *Conflict = propagate();
    if (Conflict != nullptr) {
      ++Stats.Conflicts;
      ++LocalConflicts;
      if (decisionLevel() == 0) {
        Ok = false;
        return false;
      }

      int BacktrackLevel = 0;
      uint32_t LBD = 0;
      analyze(Conflict, Learnt, BacktrackLevel, LBD);
      cancelUntil(BacktrackLevel);
      // A conflict means the saved trail has diverged for real; stop
      // replaying it and let phase saving carry the rest.
      abandonReplay();

      if (Learnt.size() == 1) {
        uncheckedEnqueue(Learnt[0], nullptr);
      } else {
        Clause *C = new Clause();
        C->Lits = Learnt;
        C->Learnt = true;
        C->LBD = LBD;
        Learnts.push_back(C);
        attachClause(C);
        claBumpActivity(*C);
        uncheckedEnqueue(Learnt[0], C);
      }
      Stats.LearntLiterals += Learnt.size();
      varDecayActivity();
      claDecayActivity();

      if (ConflictBudget != 0 &&
          Stats.Conflicts - SolveStartConflicts >= ConflictBudget) {
        BudgetExhausted = true;
        cancelUntil(0);
        return false;
      }
      continue;
    }

    // No conflict.
    if (LocalConflicts >= ConflictsBeforeRestart) {
      ++Stats.Restarts;
      cancelUntil(0);
      abandonReplay();
      DoneOut = false;
      return false;
    }
    if (static_cast<double>(Learnts.size()) >= MaxLearnts) {
      reduceDB();
      MaxLearnts *= 1.1;
    }

    // Respect assumptions, then branch.
    Lit Next = litUndef();
    while (decisionLevel() < static_cast<int>(CurrentAssumptions.size())) {
      Lit Assumption = CurrentAssumptions[decisionLevel()];
      if (value(Assumption) == LBool::True) {
        // Already satisfied: open a dummy decision level to keep the
        // level/assumption correspondence.
        TrailLim.push_back(static_cast<int>(Trail.size()));
        continue;
      }
      if (value(Assumption) == LBool::False)
        return false; // unsatisfiable under the assumptions
      Next = Assumption;
      break;
    }

    if (Next == litUndef()) {
      // Warm-start trail replay: re-apply the decisions undone by a
      // forced backtrack, skipping any that propagation re-derived. The
      // first literal the trail now contradicts abandons the queue — from
      // there the searches have genuinely diverged.
      while (ReplayHead < ReplayQueue.size()) {
        Lit Saved = ReplayQueue[ReplayHead];
        if (value(Saved) == LBool::True) {
          ++ReplayHead;
          continue;
        }
        if (value(Saved) == LBool::False) {
          abandonReplay();
          break;
        }
        ++ReplayHead;
        Next = Saved;
        ++Stats.Decisions;
        break;
      }
    }

    if (Next == litUndef()) {
      Next = pickBranchLit();
      if (Next == litUndef()) {
        Model = Assigns; // full model found
        return true;
      }
      ++Stats.Decisions;
    }
    TrailLim.push_back(static_cast<int>(Trail.size()));
    uncheckedEnqueue(Next, nullptr);
  }
}

bool Solver::solve() { return solve(std::vector<Lit>()); }

bool Solver::solve(const std::vector<Lit> &Assumptions) {
  Model.clear();
  BudgetExhausted = false;
  if (!Ok)
    return false;

  if (!WarmStart) {
    cancelUntil(0);
    if (propagate() != nullptr) {
      Ok = false;
      return false;
    }
    removeSatisfiedLearnts();
  } else {
    // Warm start: resume with the trail left by the previous solve and
    // the clause additions since. Assumption solves need the assumptions
    // installed at decision levels 1..k, so they restart from the root
    // (saving the trail for replay); plain solves continue in place.
    if (!Assumptions.empty() && decisionLevel() > 0) {
      saveReplay();
      cancelUntil(0);
    }
    if (decisionLevel() == 0) {
      if (propagate() != nullptr) {
        Ok = false;
        return false;
      }
      if (InprocessCadence != 0 &&
          ++SolvesSinceInprocess >= InprocessCadence) {
        SolvesSinceInprocess = 0;
        inprocess();
        if (!Ok)
          return false;
      }
    }
  }

  CurrentAssumptions = Assumptions;
  SolveStartConflicts = Stats.Conflicts;
  MaxLearnts =
      std::max(MaxLearnts, static_cast<double>(NumProblemClauses) / 3.0 + 2000);

  bool Result = false;
  bool Done = false;
  uint64_t Round = WarmStart ? RestartRound : 0;
  for (; !Done; ++Round) {
    uint64_t Budget = 100 * lubySequence(Round);
    Result = search(Budget, Done);
    if (BudgetExhausted)
      break;
  }
  if (WarmStart)
    RestartRound = Round;

  // A satisfiable plain warm-start solve keeps its trail (the model) so
  // the next iteration resumes from the shared prefix; every other exit
  // returns to the root.
  if (!WarmStart || !Result || !Assumptions.empty() || BudgetExhausted)
    cancelUntil(0);
  CurrentAssumptions.clear();
  ReplayQueue.clear();
  ReplayHead = 0;
  return Result;
}

LBool Solver::modelValue(Var V) const {
  if (V < 0 || static_cast<size_t>(V) >= Model.size())
    return LBool::Undef;
  return Model[V];
}
