//===- sat/Dimacs.h - DIMACS CNF reading and writing ------------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DIMACS CNF import/export. Used by the test suite (random CNF round
/// trips) and handy for debugging synthesized instances with external
/// solvers.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SAT_DIMACS_H
#define PSKETCH_SAT_DIMACS_H

#include "sat/SatTypes.h"

#include <string>
#include <vector>

namespace psketch {
namespace sat {

class Solver;

/// A CNF formula in portable form: clause lists over 0-based variables.
struct Cnf {
  int NumVars = 0;
  std::vector<std::vector<Lit>> Clauses;
};

/// Parses DIMACS text. \returns false (and fills \p ErrorOut) on malformed
/// input. Accepts comment lines and a standard "p cnf V C" header; the
/// header's counts are advisory.
bool parseDimacs(const std::string &Text, Cnf &CnfOut, std::string &ErrorOut);

/// Renders \p Formula as DIMACS text. Each entry of \p Comments is
/// emitted as a leading "c " line (used for the hole-variable map when
/// dumping a live synthesis instance).
std::string writeDimacs(const Cnf &Formula,
                        const std::vector<std::string> &Comments);
std::string writeDimacs(const Cnf &Formula);

/// Snapshots \p S's live instance as a portable formula: the root-level
/// facts as unit clauses plus every problem clause (learnts are implied
/// and omitted). Equisatisfiable with, and model-equivalent to,
/// everything added to the solver so far.
Cnf exportCnf(const Solver &S);

/// Loads \p Formula into \p SolverOut, creating variables as needed.
/// \returns false if the formula is trivially unsatisfiable during load.
bool loadCnf(const Cnf &Formula, Solver &SolverOut);

} // namespace sat
} // namespace psketch

#endif // PSKETCH_SAT_DIMACS_H
