//===- sat/SatTypes.h - Literals, variables, truth values -------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The basic vocabulary of the SAT solver: variables, literals, and the
/// three-valued truth type. Follows the MiniSat conventions (a literal is
/// 2*var + sign, so both polarities of a variable index adjacent slots).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SAT_SATTYPES_H
#define PSKETCH_SAT_SATTYPES_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace psketch {
namespace sat {

/// A propositional variable; variables are dense non-negative integers.
using Var = int32_t;

/// The invalid variable sentinel.
const Var VarUndef = -1;

/// A literal: a variable together with a polarity.
class Lit {
public:
  Lit() : Code(-2) {}

  /// Builds the literal for \p V, negated if \p Negated.
  Lit(Var V, bool Negated) : Code(V * 2 + static_cast<int32_t>(Negated)) {
    assert(V >= 0 && "literal of invalid variable");
  }

  /// \returns the underlying variable.
  Var var() const { return Code >> 1; }

  /// \returns true if this is the negative-polarity literal.
  bool sign() const { return (Code & 1) != 0; }

  /// \returns the opposite-polarity literal of the same variable.
  Lit operator~() const { return fromCode(Code ^ 1); }

  /// \returns a dense non-negative index usable for watch lists.
  int32_t index() const { return Code; }

  /// Rebuilds a literal from its dense index.
  static Lit fromCode(int32_t Code) {
    Lit L;
    L.Code = Code;
    return L;
  }

  bool operator==(const Lit &Other) const { return Code == Other.Code; }
  bool operator!=(const Lit &Other) const { return Code != Other.Code; }
  bool operator<(const Lit &Other) const { return Code < Other.Code; }

private:
  int32_t Code;
};

/// The undefined literal sentinel.
inline Lit litUndef() { return Lit(); }

/// Three-valued truth: used both for assignments and models.
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

/// \returns the LBool encoding of the concrete boolean \p B.
inline LBool boolToLBool(bool B) { return B ? LBool::True : LBool::False; }

/// \returns \p Value flipped when \p Negate is set; Undef stays Undef.
inline LBool xorLBool(LBool Value, bool Negate) {
  if (Value == LBool::Undef)
    return LBool::Undef;
  return boolToLBool((Value == LBool::True) != Negate);
}

/// A clause: literals plus learning metadata. Clauses are heap-allocated
/// and referenced by pointer from the watch lists; deletion is handled by
/// the solver's clause database.
struct Clause {
  std::vector<Lit> Lits;
  double Activity = 0.0;
  uint32_t LBD = 0;
  bool Learnt = false;
  bool Deleted = false;

  size_t size() const { return Lits.size(); }
  Lit &operator[](size_t I) { return Lits[I]; }
  const Lit &operator[](size_t I) const { return Lits[I]; }
};

} // namespace sat
} // namespace psketch

#endif // PSKETCH_SAT_SATTYPES_H
