//===- sat/Solver.h - A CDCL SAT solver -------------------------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver in the MiniSat lineage:
/// two-literal watches, first-UIP learning with clause minimization, EVSIDS
/// branching with phase saving, Luby restarts, and LBD-based learnt-clause
/// database reduction. The inductive synthesizer (Section 6 of the paper)
/// uses it incrementally: each counterexample trace contributes clauses, and
/// the accumulated instance is re-solved to propose the next candidate.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SAT_SOLVER_H
#define PSKETCH_SAT_SOLVER_H

#include "sat/SatTypes.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace psketch {
namespace sat {

/// Aggregate solver statistics, reported by the benchmark harness.
struct SolverStats {
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Conflicts = 0;
  uint64_t Restarts = 0;
  uint64_t LearntLiterals = 0;
  uint64_t DeletedClauses = 0;
};

/// Work done by the between-solve inprocessing passes (warm start only).
struct InprocessStats {
  uint64_t Passes = 0;
  uint64_t RemovedSatisfied = 0; ///< root-satisfied clauses swept
  uint64_t StrengthenedLits = 0; ///< removed by binary self-subsumption
  uint64_t SubsumedClauses = 0;  ///< deleted: a binary subsumes them
  uint64_t VivifiedLits = 0;     ///< removed by clause vivification
};

/// A CDCL SAT solver with incremental clause addition and assumption-based
/// solving.
///
/// Usage:
/// \code
///   Solver S;
///   Var A = S.newVar(), B = S.newVar();
///   S.addClause({Lit(A, false), Lit(B, true)});
///   if (S.solve())
///     bool AVal = S.modelValue(A) == LBool::True;
/// \endcode
class Solver {
public:
  Solver();
  ~Solver();

  Solver(const Solver &) = delete;
  Solver &operator=(const Solver &) = delete;

  /// Creates a fresh variable and \returns it.
  Var newVar();

  /// \returns the number of variables allocated so far.
  int numVars() const { return static_cast<int>(Assigns.size()); }

  /// \returns the number of problem (non-learnt) clauses.
  size_t numClauses() const { return NumProblemClauses; }

  /// \returns the number of currently live learnt clauses.
  size_t numLearnts() const { return Learnts.size(); }

  /// Adds a clause over existing variables. \returns false if the solver
  /// is already in an unsatisfiable state (the clause may be dropped).
  /// Duplicated literals are merged; tautologies are ignored.
  bool addClause(std::vector<Lit> Lits);

  /// Convenience overloads for short clauses.
  bool addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
  bool addClause(Lit A, Lit B) { return addClause(std::vector<Lit>{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) {
    return addClause(std::vector<Lit>{A, B, C});
  }

  /// Solves the current instance. \returns true iff satisfiable.
  bool solve();

  /// Solves under \p Assumptions (literals forced true for this call only).
  bool solve(const std::vector<Lit> &Assumptions);

  /// \returns the model value of \p V after a satisfiable solve().
  LBool modelValue(Var V) const;

  /// \returns the model value of \p L after a satisfiable solve().
  LBool modelValue(Lit L) const {
    return xorLBool(modelValue(L.var()), L.sign());
  }

  /// \returns false once the instance has been proven unsatisfiable at
  /// level zero (no future solve can succeed without new variables).
  bool okay() const { return Ok; }

  /// \returns cumulative statistics.
  const SolverStats &stats() const { return Stats; }

  /// Sets the conflict budget for the next solve (0 = unlimited). When the
  /// budget is exhausted solve() returns false and budgetExhausted() is
  /// true; callers must treat that as "unknown".
  void setConflictBudget(uint64_t Conflicts) { ConflictBudget = Conflicts; }

  /// \returns true if the previous solve stopped on the conflict budget
  /// rather than on a real SAT/UNSAT answer.
  bool budgetExhausted() const { return BudgetExhausted; }

  /// Enables warm-started incremental solving: consecutive solve() calls
  /// continue one search instead of restarting it. Clauses added between
  /// solves backtrack only as far as they force (saving the undone
  /// decisions for replay), the assignment trail survives a satisfiable
  /// plain solve, the Luby restart index persists across solves, and a
  /// periodic root-level inprocessing pass replaces the per-solve learnt
  /// sweep. Off (the default) reproduces the from-scratch trajectory
  /// bit-identically.
  void setWarmStart(bool Enabled);
  bool warmStart() const { return WarmStart; }

  /// Sets how many warm-started solves run between inprocessing passes
  /// (0 disables inprocessing entirely). Only consulted under warm start.
  void setInprocessCadence(unsigned SolvesBetweenPasses) {
    InprocessCadence = SolvesBetweenPasses;
  }

  /// Runs one root-level inprocessing pass now: sweep root-satisfied
  /// clauses, strengthen by binary self-subsumption, vivify learnt
  /// clauses, and decay the learnt-DB budget. Requires decision level 0
  /// (always true with warm start off; under warm start the solver calls
  /// this on its own cadence at root visits).
  void inprocess();

  /// \returns cumulative inprocessing statistics.
  const InprocessStats &inprocessStats() const { return IStats; }

  /// Appends the live instance to \p Out: the root-level facts as unit
  /// clauses (addClause never stores units, it enqueues them) followed by
  /// every problem clause as currently stored. Learnt clauses are implied
  /// and omitted. The result is equisatisfiable with everything added so
  /// far and has the same models over the allocated variables.
  void exportClauses(std::vector<std::vector<Lit>> &Out) const;

private:
  // Watcher: clause plus a cached "blocker" literal that often avoids
  // touching the clause at all.
  struct Watcher {
    Clause *C;
    Lit Blocker;
  };

  // Assignment trail and per-variable metadata.
  std::vector<LBool> Assigns;
  std::vector<char> Polarity;       // saved phase; 1 = last assigned false
  std::vector<double> Activity;     // EVSIDS activity
  std::vector<int> Level;           // decision level of assignment
  std::vector<Clause *> Reason;     // implying clause (nullptr = decision)
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;        // trail index per decision level
  size_t PropagateHead = 0;

  // Clause database.
  std::vector<Clause *> Problem;
  std::vector<Clause *> Learnts;
  size_t NumProblemClauses = 0;
  std::vector<std::vector<Watcher>> Watches; // indexed by Lit::index()

  // Branching heap (binary max-heap on Activity).
  std::vector<Var> Heap;
  std::vector<int> HeapIndex; // -1 = not in heap
  double VarInc = 1.0;
  double ClauseInc = 1.0;

  // Conflict-analysis scratch.
  std::vector<char> Seen;
  std::vector<Lit> AnalyzeStack;
  std::vector<Lit> AnalyzeToClear;

  // Per-solve state.
  std::vector<Lit> CurrentAssumptions;
  uint64_t SolveStartConflicts = 0;

  // Solver state.
  bool Ok = true;
  std::vector<LBool> Model;
  SolverStats Stats;
  uint64_t ConflictBudget = 0;
  bool BudgetExhausted = false;
  double MaxLearnts = 0.0;

  // Warm-start state (docs/SOLVER.md). ReplayQueue holds the decision
  // literals undone by a forced backtrack, replayed in order by the next
  // search to fast-forward to the shared prefix; RestartRound is the
  // persistent Luby index.
  bool WarmStart = false;
  uint64_t RestartRound = 0;
  std::vector<Lit> ReplayQueue;
  size_t ReplayHead = 0;
  unsigned InprocessCadence = 4;
  unsigned SolvesSinceInprocess = 0;
  InprocessStats IStats;

  // Internals.
  LBool value(Var V) const { return Assigns[V]; }
  LBool value(Lit L) const { return xorLBool(Assigns[L.var()], L.sign()); }
  int decisionLevel() const { return static_cast<int>(TrailLim.size()); }

  LBool rootValue(Lit L) const {
    if (Assigns[L.var()] == LBool::Undef || Level[L.var()] != 0)
      return LBool::Undef;
    return value(L);
  }

  void attachClause(Clause *C);
  void detachClause(Clause *C);
  bool addUnitClause(Lit L);
  bool attachWarm(std::vector<Lit> Kept);
  void saveReplay();
  void abandonReplay() { ReplayHead = ReplayQueue.size(); }
  void uncheckedEnqueue(Lit L, Clause *From);
  Clause *propagate();
  void analyze(Clause *Conflict, std::vector<Lit> &Learnt, int &BacktrackLevel,
               uint32_t &LBD);
  bool litRedundant(Lit L, uint32_t AbstractLevels);
  void cancelUntil(int TargetLevel);
  Lit pickBranchLit();
  bool search(uint64_t ConflictsBeforeRestart, bool &DoneOut);
  void reduceDB();
  void removeSatisfiedLearnts();

  // Inprocessing helpers (all root-level).
  bool reinstallRoot(Clause *C, bool IsProblem);
  void sweepSatisfied();
  void strengthenSelfSubsume();
  void vivify();
  bool vivifyOne(Clause *C);

  // Activity bookkeeping.
  void varBumpActivity(Var V);
  void varDecayActivity() { VarInc *= (1.0 / 0.95); }
  void claBumpActivity(Clause &C);
  void claDecayActivity() { ClauseInc *= (1.0 / 0.999); }

  // Heap operations.
  void heapInsert(Var V);
  void heapPercolateUp(int Index);
  void heapPercolateDown(int Index);
  Var heapRemoveMax();
  bool heapContains(Var V) const { return HeapIndex[V] >= 0; }
};

/// \returns the Luby sequence value luby(Index) for restart scheduling.
uint64_t lubySequence(uint64_t Index);

} // namespace sat
} // namespace psketch

#endif // PSKETCH_SAT_SOLVER_H
