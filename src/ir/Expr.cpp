//===- ir/Expr.cpp ---------------------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"

using namespace psketch;
using namespace psketch::ir;

bool Expr::isHoleOnly() const {
  switch (Kind) {
  case ExprKind::ConstInt:
  case ExprKind::HoleRead:
    return true;
  case ExprKind::GlobalRead:
  case ExprKind::GlobalArrayRead:
  case ExprKind::LocalRead:
  case ExprKind::FieldRead:
    return false;
  default:
    for (ExprRef Op : Ops)
      if (!Op->isHoleOnly())
        return false;
    return true;
  }
}

bool Expr::readsShared() const {
  switch (Kind) {
  case ExprKind::GlobalRead:
  case ExprKind::GlobalArrayRead:
  case ExprKind::FieldRead:
    return true;
  case ExprKind::ConstInt:
  case ExprKind::HoleRead:
  case ExprKind::LocalRead:
    return false;
  default:
    break;
  }
  for (ExprRef Op : Ops)
    if (Op->readsShared())
      return true;
  return false;
}
