//===- ir/Program.cpp ------------------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include "support/StrUtil.h"

#include <bit>

using namespace psketch;
using namespace psketch::ir;

Program::Program(unsigned IntWidth, unsigned PoolSize)
    : IntWidth(IntWidth), PoolSize(PoolSize) {
  assert(IntWidth >= 2 && IntWidth <= 62 && "unsupported int width");
  PrologueBody.Name = "prologue";
  EpilogueBody.Name = "epilogue";
}

Expr *Program::newExpr(ExprKind Kind) {
  ExprArena.emplace_back(Kind);
  return &ExprArena.back();
}

Stmt *Program::newStmt(StmtKind Kind) {
  StmtArena.emplace_back(Kind);
  return &StmtArena.back();
}

//===----------------------------------------------------------------------===//
// Symbol tables.
//===----------------------------------------------------------------------===//

unsigned Program::addField(const std::string &Name, Type Ty) {
  FieldTable.push_back(Field{Name, Ty});
  return static_cast<unsigned>(FieldTable.size() - 1);
}

unsigned Program::addGlobal(const std::string &Name, Type Ty, int64_t Init) {
  GlobalTable.push_back(Global{Name, Ty, 0, wrap(Init, Ty)});
  return static_cast<unsigned>(GlobalTable.size() - 1);
}

unsigned Program::addGlobalArray(const std::string &Name, Type Ty,
                                 unsigned Size, int64_t Init) {
  assert(Size > 0 && "empty global array");
  GlobalTable.push_back(Global{Name, Ty, Size, wrap(Init, Ty)});
  return static_cast<unsigned>(GlobalTable.size() - 1);
}

unsigned Program::addLocal(BodyId Id, const std::string &Name, Type Ty,
                           int64_t Init) {
  Body &B = body(Id);
  B.Locals.push_back(Local{Name, Ty, wrap(Init, Ty)});
  return static_cast<unsigned>(B.Locals.size() - 1);
}

unsigned Program::addHoleNoCount(const std::string &Name,
                                 unsigned NumChoices) {
  assert(NumChoices >= 1 && "hole needs at least one choice");
  assert(NumChoices <= (1u << (IntWidth - 1)) &&
         "hole values must fit in the (signed) int width");
  unsigned Width = 1;
  while ((1u << Width) < NumChoices)
    ++Width;
  HoleTable.push_back(Hole{Name, NumChoices, Width, /*Counted=*/false});
  return static_cast<unsigned>(HoleTable.size() - 1);
}

unsigned Program::addHole(const std::string &Name, unsigned NumChoices) {
  unsigned Id = addHoleNoCount(Name, NumChoices);
  if (NumChoices > 1) {
    SpaceFactors.push_back(BigCount(NumChoices));
    HoleTable[Id].Counted = true;
  }
  return Id;
}

BigCount Program::candidateSpaceSize() const {
  BigCount Size;
  for (const BigCount &Factor : SpaceFactors)
    Size *= Factor;
  return Size;
}

//===----------------------------------------------------------------------===//
// Bodies.
//===----------------------------------------------------------------------===//

unsigned Program::addThread(const std::string &Name) {
  Threads.emplace_back();
  Threads.back().Name = Name;
  return static_cast<unsigned>(Threads.size() - 1);
}

Body &Program::body(BodyId Id) {
  switch (Id.BodyKind) {
  case BodyId::Kind::Prologue:
    return PrologueBody;
  case BodyId::Kind::Epilogue:
    return EpilogueBody;
  case BodyId::Kind::Thread:
    assert(Id.ThreadIndex < Threads.size() && "bad thread index");
    return Threads[Id.ThreadIndex];
  }
  __builtin_unreachable();
}

const Body &Program::body(BodyId Id) const {
  return const_cast<Program *>(this)->body(Id);
}

//===----------------------------------------------------------------------===//
// Configuration.
//===----------------------------------------------------------------------===//

unsigned Program::widthOf(Type Ty) const {
  switch (Ty) {
  case Type::Bool:
    return 1;
  case Type::Int:
    return IntWidth;
  case Type::Ptr: {
    unsigned Width = 1;
    while ((1u << Width) <= PoolSize)
      ++Width;
    return Width;
  }
  }
  __builtin_unreachable();
}

int64_t Program::wrap(int64_t Value, Type Ty) const {
  switch (Ty) {
  case Type::Bool:
    return Value != 0 ? 1 : 0;
  case Type::Ptr: {
    unsigned W = widthOf(Type::Ptr);
    return Value & ((int64_t(1) << W) - 1);
  }
  case Type::Int: {
    uint64_t Mask = (uint64_t(1) << IntWidth) - 1;
    uint64_t U = static_cast<uint64_t>(Value) & Mask;
    uint64_t SignBit = uint64_t(1) << (IntWidth - 1);
    if (U & SignBit)
      return static_cast<int64_t>(U) - (int64_t(1) << IntWidth);
    return static_cast<int64_t>(U);
  }
  }
  __builtin_unreachable();
}

//===----------------------------------------------------------------------===//
// Expression factories.
//===----------------------------------------------------------------------===//

ExprRef Program::constInt(int64_t Value, Type Ty) {
  Expr *E = newExpr(ExprKind::ConstInt);
  E->Ty = Ty;
  E->IntValue = wrap(Value, Ty);
  return E;
}

ExprRef Program::global(unsigned Id) {
  assert(Id < GlobalTable.size() && "bad global id");
  assert(GlobalTable[Id].ArraySize == 0 && "scalar read of array global");
  Expr *E = newExpr(ExprKind::GlobalRead);
  E->Id = Id;
  E->Ty = GlobalTable[Id].Ty;
  return E;
}

ExprRef Program::globalAt(unsigned Id, ExprRef Index) {
  assert(Id < GlobalTable.size() && "bad global id");
  assert(GlobalTable[Id].ArraySize > 0 && "indexed read of scalar global");
  Expr *E = newExpr(ExprKind::GlobalArrayRead);
  E->Id = Id;
  E->Ty = GlobalTable[Id].Ty;
  E->Ops.push_back(Index);
  return E;
}

ExprRef Program::local(unsigned Slot, Type Ty) {
  Expr *E = newExpr(ExprKind::LocalRead);
  E->Id = Slot;
  E->Ty = Ty;
  return E;
}

ExprRef Program::field(ExprRef Pointer, unsigned FieldId) {
  assert(FieldId < FieldTable.size() && "bad field id");
  assert(Pointer->Ty == Type::Ptr && "field access through non-pointer");
  Expr *E = newExpr(ExprKind::FieldRead);
  E->Id = FieldId;
  E->Ty = FieldTable[FieldId].Ty;
  E->Ops.push_back(Pointer);
  return E;
}

ExprRef Program::holeValue(unsigned HoleId) {
  assert(HoleId < HoleTable.size() && "bad hole id");
  Expr *E = newExpr(ExprKind::HoleRead);
  E->Id = HoleId;
  E->Ty = Type::Int;
  return E;
}

ExprRef Program::choose(const std::string &Name,
                        std::vector<ExprRef> Alternatives) {
  assert(!Alternatives.empty() && "empty generator");
  if (Alternatives.size() == 1)
    return Alternatives[0];
  Type Ty = Alternatives[0]->Ty;
  for ([[maybe_unused]] ExprRef Alt : Alternatives)
    assert(Alt->Ty == Ty && "generator alternatives disagree on type");
  unsigned HoleId =
      addHole(Name, static_cast<unsigned>(Alternatives.size()));
  Expr *E = newExpr(ExprKind::Choice);
  E->Id = HoleId;
  E->Ty = Ty;
  E->Ops = std::move(Alternatives);
  return E;
}

ExprRef Program::choiceOf(unsigned HoleId, std::vector<ExprRef> Alternatives) {
  assert(HoleId < HoleTable.size() && "bad hole id");
  assert(Alternatives.size() == HoleTable[HoleId].NumChoices &&
         "alternative count must match the shared hole");
  Type Ty = Alternatives[0]->Ty;
  for ([[maybe_unused]] ExprRef Alt : Alternatives)
    assert(Alt->Ty == Ty && "generator alternatives disagree on type");
  Expr *E = newExpr(ExprKind::Choice);
  E->Id = HoleId;
  E->Ty = Ty;
  E->Ops = std::move(Alternatives);
  return E;
}

ExprRef Program::binop(ExprKind Kind, ExprRef A, ExprRef B, Type ResultTy) {
  Expr *E = newExpr(Kind);
  E->Ty = ResultTy;
  E->Ops.push_back(A);
  E->Ops.push_back(B);
  return E;
}

ExprRef Program::add(ExprRef A, ExprRef B) {
  return binop(ExprKind::Add, A, B, A->Ty);
}

ExprRef Program::sub(ExprRef A, ExprRef B) {
  return binop(ExprKind::Sub, A, B, A->Ty);
}

ExprRef Program::eq(ExprRef A, ExprRef B) {
  return binop(ExprKind::Eq, A, B, Type::Bool);
}

ExprRef Program::ne(ExprRef A, ExprRef B) {
  return binop(ExprKind::Ne, A, B, Type::Bool);
}

ExprRef Program::lt(ExprRef A, ExprRef B) {
  return binop(ExprKind::Lt, A, B, Type::Bool);
}

ExprRef Program::le(ExprRef A, ExprRef B) {
  return binop(ExprKind::Le, A, B, Type::Bool);
}

ExprRef Program::land(ExprRef A, ExprRef B) {
  return binop(ExprKind::And, A, B, Type::Bool);
}

ExprRef Program::lor(ExprRef A, ExprRef B) {
  return binop(ExprKind::Or, A, B, Type::Bool);
}

ExprRef Program::lnot(ExprRef A) {
  Expr *E = newExpr(ExprKind::Not);
  E->Ty = Type::Bool;
  E->Ops.push_back(A);
  return E;
}

ExprRef Program::ite(ExprRef Cond, ExprRef Then, ExprRef Else) {
  assert(Then->Ty == Else->Ty && "ite arm types disagree");
  Expr *E = newExpr(ExprKind::Ite);
  E->Ty = Then->Ty;
  E->Ops.push_back(Cond);
  E->Ops.push_back(Then);
  E->Ops.push_back(Else);
  return E;
}

//===----------------------------------------------------------------------===//
// Location factories.
//===----------------------------------------------------------------------===//

Loc Program::locGlobal(unsigned Id) const {
  assert(Id < GlobalTable.size() && GlobalTable[Id].ArraySize == 0 &&
         "bad scalar global");
  Loc L;
  L.LocKind = Loc::Kind::Global;
  L.Id = Id;
  return L;
}

Loc Program::locGlobalAt(unsigned Id, ExprRef Index) const {
  assert(Id < GlobalTable.size() && GlobalTable[Id].ArraySize > 0 &&
         "bad array global");
  Loc L;
  L.LocKind = Loc::Kind::GlobalArray;
  L.Id = Id;
  L.Index = Index;
  return L;
}

Loc Program::locLocal(unsigned Slot) const {
  Loc L;
  L.LocKind = Loc::Kind::Local;
  L.Id = Slot;
  return L;
}

Loc Program::locField(ExprRef Pointer, unsigned FieldId) const {
  assert(FieldId < FieldTable.size() && "bad field id");
  Loc L;
  L.LocKind = Loc::Kind::Field;
  L.Id = FieldId;
  L.Index = Pointer;
  return L;
}

//===----------------------------------------------------------------------===//
// Statement factories.
//===----------------------------------------------------------------------===//

StmtRef Program::nop() { return newStmt(StmtKind::Nop); }

StmtRef Program::seq(std::vector<StmtRef> Stmts) {
  Stmt *S = newStmt(StmtKind::Seq);
  S->Children = std::move(Stmts);
  return S;
}

StmtRef Program::assign(Loc Target, ExprRef Value) {
  Stmt *S = newStmt(StmtKind::Assign);
  S->Target = Target;
  S->Value = Value;
  return S;
}

StmtRef Program::choiceAssign(const std::string &Name, std::vector<Loc> Targets,
                              ExprRef Value) {
  assert(!Targets.empty() && "empty l-value generator");
  if (Targets.size() == 1)
    return assign(Targets[0], Value);
  Stmt *S = newStmt(StmtKind::ChoiceAssign);
  S->HoleId = addHole(Name, static_cast<unsigned>(Targets.size()));
  S->TargetChoices = std::move(Targets);
  S->Value = Value;
  return S;
}

StmtRef Program::swap(const std::string &Name, Loc Tmp,
                      std::vector<Loc> Targets, ExprRef Value) {
  assert(!Targets.empty() && "swap needs a location");
  Stmt *S = newStmt(StmtKind::Swap);
  S->Target = Tmp;
  S->Value = Value;
  if (Targets.size() > 1)
    S->HoleId = addHole(Name, static_cast<unsigned>(Targets.size()));
  S->TargetChoices = std::move(Targets);
  return S;
}

StmtRef Program::ifS(ExprRef Cond, StmtRef Then, StmtRef Else) {
  Stmt *S = newStmt(StmtKind::If);
  S->Cond = Cond;
  S->Children.push_back(Then);
  S->Children.push_back(Else);
  return S;
}

StmtRef Program::whileS(ExprRef Cond, StmtRef BodyStmt, unsigned UnrollBound) {
  assert(UnrollBound > 0 && "while needs a positive unroll bound");
  Stmt *S = newStmt(StmtKind::While);
  S->Cond = Cond;
  S->Children.push_back(BodyStmt);
  S->UnrollBound = UnrollBound;
  return S;
}

StmtRef Program::atomic(StmtRef BodyStmt) {
  Stmt *S = newStmt(StmtKind::Atomic);
  S->Children.push_back(BodyStmt);
  return S;
}

StmtRef Program::condAtomic(ExprRef Cond, StmtRef BodyStmt) {
  Stmt *S = newStmt(StmtKind::CondAtomic);
  S->Cond = Cond;
  S->Children.push_back(BodyStmt);
  return S;
}

StmtRef Program::assertS(ExprRef Cond, const std::string &Label) {
  Stmt *S = newStmt(StmtKind::Assert);
  S->Cond = Cond;
  S->Label = Label;
  return S;
}

StmtRef Program::alloc(Loc Target) {
  Stmt *S = newStmt(StmtKind::Alloc);
  S->Target = Target;
  return S;
}

std::vector<unsigned> Program::makeReorderHoles(const std::string &Name,
                                                unsigned K,
                                                ReorderEncoding Enc) {
  std::vector<unsigned> Holes;
  if (K < 2)
    return Holes;
  addSpaceFactor(BigCount::factorial(K));
  if (Enc == ReorderEncoding::Quadratic) {
    // k order holes of k choices; legal assignments are permutations.
    for (unsigned I = 0; I < K; ++I)
      Holes.push_back(
          addHoleNoCount(format("%s.order[%u]", Name.c_str(), I), K));
    for (unsigned I = 0; I < K; ++I)
      for (unsigned J = I + 1; J < K; ++J)
        addStaticConstraint(ne(holeValue(Holes[I]), holeValue(Holes[J])));
    return Holes;
  }
  // Insertion positions: statement m is inserted into one of the
  // L+1 = 2^m gaps of the current expanded list (Section 7.2's
  // exponential encoding; redundant but often cheaper).
  assert(K <= 16 && "exponential reorder encoding limited to 16 stmts");
  for (unsigned M = 1; M < K; ++M)
    Holes.push_back(
        addHoleNoCount(format("%s.ins[%u]", Name.c_str(), M), 1u << M));
  return Holes;
}

StmtRef Program::reorderOf(const std::vector<unsigned> &Holes,
                           std::vector<StmtRef> Stmts, ReorderEncoding Enc) {
  Stmt *S = newStmt(StmtKind::Reorder);
  S->Encoding = Enc;
  S->Children = std::move(Stmts);
  S->ReorderHoles = Holes;
  [[maybe_unused]] unsigned K = static_cast<unsigned>(S->Children.size());
  assert((K < 2 && Holes.empty()) ||
         (Enc == ReorderEncoding::Quadratic ? Holes.size() == K
                                            : Holes.size() == K - 1));
  return S;
}

StmtRef Program::reorder(const std::string &Name, std::vector<StmtRef> Stmts,
                         ReorderEncoding Enc) {
  std::vector<unsigned> Holes =
      makeReorderHoles(Name, static_cast<unsigned>(Stmts.size()), Enc);
  return reorderOf(Holes, std::move(Stmts), Enc);
}

StmtRef Program::choiceAssignOf(unsigned HoleId, std::vector<Loc> Targets,
                                ExprRef Value) {
  assert(HoleId < HoleTable.size() &&
         Targets.size() == HoleTable[HoleId].NumChoices &&
         "target count must match the shared hole");
  Stmt *S = newStmt(StmtKind::ChoiceAssign);
  S->HoleId = HoleId;
  S->TargetChoices = std::move(Targets);
  S->Value = Value;
  return S;
}

StmtRef Program::swapOf(unsigned HoleId, Loc Tmp, std::vector<Loc> Targets,
                        ExprRef Value) {
  assert(HoleId < HoleTable.size() &&
         Targets.size() == HoleTable[HoleId].NumChoices &&
         "target count must match the shared hole");
  Stmt *S = newStmt(StmtKind::Swap);
  S->Target = Tmp;
  S->Value = Value;
  S->HoleId = HoleId;
  S->TargetChoices = std::move(Targets);
  return S;
}

StmtRef Program::lock(Loc Owner, ExprRef OwnerRead, ExprRef Pid) {
  // lock(lk):  atomic (lk.owner == -1) { lk.owner = pid; }
  return condAtomic(eq(OwnerRead, constInt(-1)), assign(Owner, Pid));
}

StmtRef Program::unlock(Loc Owner, ExprRef OwnerRead, ExprRef Pid,
                        const std::string &Label) {
  // unlock(lk): atomic { assert lk.owner == pid; lk.owner = -1; }
  return atomic(seq({assertS(eq(OwnerRead, Pid), Label),
                     assign(Owner, constInt(-1))}));
}

ExprRef Program::readOfShared(const Loc &L) {
  switch (L.LocKind) {
  case Loc::Kind::Global:
    return global(L.Id);
  case Loc::Kind::GlobalArray:
    return globalAt(L.Id, L.Index);
  case Loc::Kind::Field:
    return field(L.Index, L.Id);
  case Loc::Kind::Local:
    break;
  }
  assert(false && "readOfShared needs a shared location");
  return constInt(0);
}

StmtRef Program::cas(Loc Target, ExprRef OldValue, ExprRef NewValue) {
  return atomic(
      ifS(eq(readOfShared(Target), OldValue), assign(Target, NewValue)));
}

StmtRef Program::casFlag(Loc Target, ExprRef OldValue, ExprRef NewValue,
                         Loc SuccessFlag) {
  assert(SuccessFlag.LocKind == Loc::Kind::Local &&
         "the success flag must be a local");
  ExprRef FlagRead = local(SuccessFlag.Id, Type::Bool);
  // The flag is computed from the pre-step state, then gates the store.
  return atomic(seq({assign(SuccessFlag, eq(readOfShared(Target), OldValue)),
                     ifS(FlagRead, assign(Target, NewValue))}));
}
