//===- ir/Printer.h - Pretty-printing sketches and candidates ---*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the structured IR as PSKETCH-flavoured source text. When a hole
/// assignment is supplied, synthesis constructs are resolved: generators
/// print their chosen alternative, reorder blocks print their chosen
/// order, and statically dead branches disappear — this is how the system
/// reports a synthesized implementation (the paper's Figures 2, 4, 6).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_IR_PRINTER_H
#define PSKETCH_IR_PRINTER_H

#include "ir/HoleAssignment.h"
#include "ir/Program.h"

#include <string>

namespace psketch {
namespace ir {

/// Printing context: a program, the body whose locals are in scope, and an
/// optional candidate to resolve the sketch with.
class Printer {
public:
  Printer(const Program &P, const HoleAssignment *Holes = nullptr)
      : P(P), Holes(Holes) {}

  /// Renders an expression (locals resolved against \p Scope).
  std::string expr(ExprRef E, BodyId Scope) const;

  /// Renders a location.
  std::string loc(const Loc &L, BodyId Scope) const;

  /// Renders a statement tree at \p Indent levels of two-space indent.
  std::string stmt(StmtRef S, BodyId Scope, unsigned Indent = 0) const;

  /// Renders the whole program (declarations and all bodies).
  std::string program() const;

private:
  const Program &P;
  const HoleAssignment *Holes;

  std::string localName(BodyId Scope, unsigned Slot) const;
  bool staticCondValue(ExprRef Cond, bool &ValueOut) const;
  std::string indentText(unsigned Indent) const {
    return std::string(2 * Indent, ' ');
  }
};

} // namespace ir
} // namespace psketch

#endif // PSKETCH_IR_PRINTER_H
