//===- ir/Expr.h - Sketch expression IR -------------------------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expression IR of the PSKETCH language. Expressions are immutable
/// nodes owned by a Program's arena and referenced by pointer. Program
/// values are integers at IR level; the type tag distinguishes booleans,
/// W-bit wrapped integers, and pointers into the bounded node pool
/// (0 = null), matching both the concrete interpreter and the symbolic
/// encoder semantics bit for bit.
///
/// The synthesis-specific nodes are HoleRead (the value of a primitive
/// `??` hole) and Choice (a regular-expression expression generator
/// `{| e1 | e2 | ... |}` already bound to its selector hole).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_IR_EXPR_H
#define PSKETCH_IR_EXPR_H

#include <cstdint>
#include <string>
#include <vector>

namespace psketch {
namespace ir {

/// Value types. Everything is an integer underneath; the tag drives
/// width selection in the symbolic encoder and sanity checks in builders.
enum class Type : uint8_t {
  Bool, ///< 0 or 1
  Int,  ///< W-bit two's complement (W = Program::IntWidth)
  Ptr,  ///< node-pool index; 0 is null
};

/// Expression node kinds.
enum class ExprKind : uint8_t {
  ConstInt,        ///< IntValue (typed Int, Bool, or Ptr-null)
  GlobalRead,      ///< Id = global index (scalar)
  GlobalArrayRead, ///< Id = global index, Ops[0] = element index
  LocalRead,       ///< Id = local slot in the enclosing body
  FieldRead,       ///< Id = field index, Ops[0] = pointer
  HoleRead,        ///< Id = hole index; value in [0, NumChoices)
  Choice,          ///< Id = selector hole; Ops = the k alternatives
  Add,             ///< Ops[0] + Ops[1] (wrapped)
  Sub,             ///< Ops[0] - Ops[1] (wrapped)
  Eq,              ///< Ops[0] == Ops[1]
  Ne,              ///< Ops[0] != Ops[1]
  Lt,              ///< signed Ops[0] < Ops[1]
  Le,              ///< signed Ops[0] <= Ops[1]
  And,             ///< boolean Ops[0] && Ops[1] (short-circuit for safety)
  Or,              ///< boolean Ops[0] || Ops[1] (short-circuit for safety)
  Not,             ///< boolean !Ops[0]
  Ite,             ///< Ops[0] ? Ops[1] : Ops[2]
};

class Expr;
/// Expressions are arena-owned and immutable; plain pointers are stable.
using ExprRef = const Expr *;

/// An immutable expression node.
class Expr {
public:
  ExprKind Kind;
  Type Ty = Type::Int;
  int64_t IntValue = 0; ///< payload of ConstInt
  unsigned Id = 0;      ///< global/local/field/hole index
  std::vector<ExprRef> Ops;

  Expr(ExprKind Kind) : Kind(Kind) {}

  bool isConst() const { return Kind == ExprKind::ConstInt; }

  /// True if the expression mentions no state at all (constants and hole
  /// reads only); such expressions are fixed per candidate, which lets the
  /// flattener keep reorder guards static and the interpreter skip dead
  /// steps without a scheduling point.
  bool isHoleOnly() const;

  /// True if the expression reads shared state (globals, arrays, or heap
  /// fields). Used by the partial-order reduction.
  bool readsShared() const;
};

/// A storage location (assignment target).
struct Loc {
  enum class Kind : uint8_t {
    Global,      ///< scalar global; Id
    GlobalArray, ///< array global; Id, Index = element
    Local,       ///< local slot; Id
    Field,       ///< heap field; Id = field, Index = pointer expr
  };

  Kind LocKind = Kind::Local;
  unsigned Id = 0;
  ExprRef Index = nullptr; ///< array index or pointer expression

  /// True if writing this location touches shared state.
  bool writesShared() const { return LocKind != Kind::Local; }

  /// True if evaluating the address (not the store) reads shared state.
  bool addressReadsShared() const {
    return Index != nullptr && Index->readsShared();
  }
};

} // namespace ir
} // namespace psketch

#endif // PSKETCH_IR_EXPR_H
