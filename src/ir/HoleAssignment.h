//===- ir/HoleAssignment.h - Candidate hole values --------------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A candidate implementation is exactly an assignment of a value to every
/// primitive hole: the paper's control vector "c". Values are indices in
/// [0, Hole::NumChoices).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_IR_HOLEASSIGNMENT_H
#define PSKETCH_IR_HOLEASSIGNMENT_H

#include <cstdint>
#include <vector>

namespace psketch {
namespace ir {

/// One candidate: hole id -> chosen alternative index.
using HoleAssignment = std::vector<uint64_t>;

} // namespace ir
} // namespace psketch

#endif // PSKETCH_IR_HOLEASSIGNMENT_H
