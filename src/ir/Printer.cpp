//===- ir/Printer.cpp ------------------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/StaticEval.h"
#include "support/StrUtil.h"

using namespace psketch;
using namespace psketch::ir;

std::string Printer::localName(BodyId Scope, unsigned Slot) const {
  const Body &B = P.body(Scope);
  if (Slot < B.Locals.size())
    return B.Locals[Slot].Name;
  return format("local%u", Slot);
}

bool Printer::staticCondValue(ExprRef Cond, bool &ValueOut) const {
  if (!Holes)
    return false;
  auto V = tryEvalStatic(P, Cond, *Holes);
  if (!V)
    return false;
  ValueOut = *V != 0;
  return true;
}

std::string Printer::expr(ExprRef E, BodyId Scope) const {
  switch (E->Kind) {
  case ExprKind::ConstInt:
    if (E->Ty == Type::Ptr && E->IntValue == 0)
      return "null";
    if (E->Ty == Type::Bool)
      return E->IntValue ? "true" : "false";
    return format("%lld", static_cast<long long>(E->IntValue));
  case ExprKind::GlobalRead:
    return P.globals()[E->Id].Name;
  case ExprKind::GlobalArrayRead:
    return P.globals()[E->Id].Name + "[" + expr(E->Ops[0], Scope) + "]";
  case ExprKind::LocalRead:
    return localName(Scope, E->Id);
  case ExprKind::FieldRead:
    return expr(E->Ops[0], Scope) + "." + P.fields()[E->Id].Name;
  case ExprKind::HoleRead:
    if (Holes && E->Id < Holes->size())
      return format("%llu", static_cast<unsigned long long>((*Holes)[E->Id]));
    return "??" + format("<%s>", P.holes()[E->Id].Name.c_str());
  case ExprKind::Choice: {
    if (Holes && E->Id < Holes->size())
      return expr(E->Ops[(*Holes)[E->Id]], Scope);
    std::vector<std::string> Alts;
    for (ExprRef Alt : E->Ops)
      Alts.push_back(expr(Alt, Scope));
    return "{| " + join(Alts, " | ") + " |}";
  }
  case ExprKind::Add:
    return "(" + expr(E->Ops[0], Scope) + " + " + expr(E->Ops[1], Scope) + ")";
  case ExprKind::Sub:
    return "(" + expr(E->Ops[0], Scope) + " - " + expr(E->Ops[1], Scope) + ")";
  case ExprKind::Eq:
    return "(" + expr(E->Ops[0], Scope) + " == " + expr(E->Ops[1], Scope) + ")";
  case ExprKind::Ne:
    return "(" + expr(E->Ops[0], Scope) + " != " + expr(E->Ops[1], Scope) + ")";
  case ExprKind::Lt:
    return "(" + expr(E->Ops[0], Scope) + " < " + expr(E->Ops[1], Scope) + ")";
  case ExprKind::Le:
    return "(" + expr(E->Ops[0], Scope) + " <= " + expr(E->Ops[1], Scope) + ")";
  case ExprKind::And:
    return "(" + expr(E->Ops[0], Scope) + " && " + expr(E->Ops[1], Scope) + ")";
  case ExprKind::Or:
    return "(" + expr(E->Ops[0], Scope) + " || " + expr(E->Ops[1], Scope) + ")";
  case ExprKind::Not:
    return "!" + expr(E->Ops[0], Scope);
  case ExprKind::Ite:
    return "(" + expr(E->Ops[0], Scope) + " ? " + expr(E->Ops[1], Scope) +
           " : " + expr(E->Ops[2], Scope) + ")";
  }
  __builtin_unreachable();
}

std::string Printer::loc(const Loc &L, BodyId Scope) const {
  switch (L.LocKind) {
  case Loc::Kind::Global:
    return P.globals()[L.Id].Name;
  case Loc::Kind::GlobalArray:
    return P.globals()[L.Id].Name + "[" + expr(L.Index, Scope) + "]";
  case Loc::Kind::Local:
    return localName(Scope, L.Id);
  case Loc::Kind::Field:
    return expr(L.Index, Scope) + "." + P.fields()[L.Id].Name;
  }
  __builtin_unreachable();
}

std::string Printer::stmt(StmtRef S, BodyId Scope, unsigned Indent) const {
  std::string Pad = indentText(Indent);
  switch (S->Kind) {
  case StmtKind::Nop:
    return Pad + ";\n";
  case StmtKind::Seq: {
    std::string Out;
    for (StmtRef Child : S->Children)
      Out += stmt(Child, Scope, Indent);
    return Out;
  }
  case StmtKind::Assign:
    return Pad + loc(S->Target, Scope) + " = " + expr(S->Value, Scope) + ";\n";
  case StmtKind::ChoiceAssign: {
    if (Holes && S->HoleId < Holes->size())
      return Pad + loc(S->TargetChoices[(*Holes)[S->HoleId]], Scope) + " = " +
             expr(S->Value, Scope) + ";\n";
    std::vector<std::string> Alts;
    for (const Loc &L : S->TargetChoices)
      Alts.push_back(loc(L, Scope));
    return Pad + "{| " + join(Alts, " | ") + " |} = " + expr(S->Value, Scope) +
           ";\n";
  }
  case StmtKind::Swap: {
    std::string Where;
    if (S->TargetChoices.size() == 1) {
      Where = loc(S->TargetChoices[0], Scope);
    } else if (Holes && S->HoleId < Holes->size()) {
      Where = loc(S->TargetChoices[(*Holes)[S->HoleId]], Scope);
    } else {
      std::vector<std::string> Alts;
      for (const Loc &L : S->TargetChoices)
        Alts.push_back(loc(L, Scope));
      Where = "{| " + join(Alts, " | ") + " |}";
    }
    return Pad + loc(S->Target, Scope) + " = AtomicSwap(" + Where + ", " +
           expr(S->Value, Scope) + ");\n";
  }
  case StmtKind::If: {
    bool CondValue;
    if (staticCondValue(S->Cond, CondValue)) {
      StmtRef Taken = CondValue ? S->Children[0] : S->Children[1];
      if (!Taken || Taken->Kind == StmtKind::Nop)
        return std::string(); // the resolved optional statement vanished
      return stmt(Taken, Scope, Indent);
    }
    std::string Out =
        Pad + "if (" + expr(S->Cond, Scope) + ") {\n" +
        (S->Children[0] ? stmt(S->Children[0], Scope, Indent + 1) : "");
    if (S->Children[1] && S->Children[1]->Kind != StmtKind::Nop) {
      Out += Pad + "} else {\n";
      Out += stmt(S->Children[1], Scope, Indent + 1);
    }
    return Out + Pad + "}\n";
  }
  case StmtKind::While:
    return Pad + "while (" + expr(S->Cond, Scope) + ") {" +
           format("  // unrolled %u times\n", S->UnrollBound) +
           stmt(S->Children[0], Scope, Indent + 1) + Pad + "}\n";
  case StmtKind::Atomic:
    return Pad + "atomic {\n" + stmt(S->Children[0], Scope, Indent + 1) + Pad +
           "}\n";
  case StmtKind::CondAtomic:
    return Pad + "atomic (" + expr(S->Cond, Scope) + ") {\n" +
           stmt(S->Children[0], Scope, Indent + 1) + Pad + "}\n";
  case StmtKind::Assert:
    return Pad + "assert " + expr(S->Cond, Scope) + "; // " + S->Label + "\n";
  case StmtKind::Alloc:
    return Pad + loc(S->Target, Scope) + " = new Node();\n";
  case StmtKind::Reorder: {
    unsigned K = static_cast<unsigned>(S->Children.size());
    if (Holes && K >= 2) {
      // Reconstruct the chosen order from the selector holes.
      std::vector<unsigned> Order;
      if (S->Encoding == ReorderEncoding::Quadratic) {
        for (unsigned I = 0; I < K; ++I)
          Order.push_back(
              static_cast<unsigned>((*Holes)[S->ReorderHoles[I]]));
      } else {
        // Replay the insertion encoding: the expanded list holds one
        // active copy of each statement among the inactive ones.
        struct Entry {
          unsigned Child;
          bool Active;
        };
        std::vector<Entry> List = {Entry{0, true}};
        for (unsigned M = 1; M < K; ++M) {
          unsigned Gap =
              static_cast<unsigned>((*Holes)[S->ReorderHoles[M - 1]]);
          std::vector<Entry> Next;
          unsigned L = static_cast<unsigned>(List.size());
          for (unsigned P2 = 0; P2 < L; ++P2) {
            Next.push_back(Entry{M, Gap == P2});
            Next.push_back(List[P2]);
          }
          Next.push_back(Entry{M, Gap == L});
          List = std::move(Next);
        }
        for (const Entry &E : List)
          if (E.Active)
            Order.push_back(E.Child);
      }
      std::string Out;
      for (unsigned Index : Order)
        Out += stmt(S->Children[Index], Scope, Indent);
      return Out;
    }
    std::string Out = Pad + "reorder {\n";
    for (StmtRef Child : S->Children)
      Out += stmt(Child, Scope, Indent + 1);
    return Out + Pad + "}\n";
  }
  }
  __builtin_unreachable();
}

std::string Printer::program() const {
  std::string Out = "struct Node {\n";
  for (const Field &F : P.fields())
    Out += "  " + F.Name + ";\n";
  Out += "}\n";
  for (const Global &G : P.globals()) {
    if (G.ArraySize > 0)
      Out += format("global %s[%u] = %lld;\n", G.Name.c_str(), G.ArraySize,
                    static_cast<long long>(G.Init));
    else
      Out += format("global %s = %lld;\n", G.Name.c_str(),
                    static_cast<long long>(G.Init));
  }
  auto PrintBody = [&](const Body &B, BodyId Id, const std::string &Title) {
    if (!B.Root)
      return;
    Out += "\n" + Title + " {\n";
    for (const Local &L : B.Locals) {
      if (!L.Name.empty() && L.Name[0] == '%')
        continue; // hidden flattener temps
      Out += format("  var %s = %lld;\n", L.Name.c_str(),
                    static_cast<long long>(L.Init));
    }
    Out += stmt(B.Root, Id, 1);
    Out += "}\n";
  };
  PrintBody(P.body(BodyId::prologue()), BodyId::prologue(), "prologue");
  for (unsigned I = 0; I < P.numThreads(); ++I)
    PrintBody(P.body(BodyId::thread(I)), BodyId::thread(I),
              format("thread %u \"%s\"", I, P.body(BodyId::thread(I)).Name.c_str()));
  PrintBody(P.body(BodyId::epilogue()), BodyId::epilogue(), "epilogue");
  return Out;
}
