//===- ir/ReorderExpand.h - Reorder-block encodings -------------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expansion of `reorder { s0 ... sk-1 }` into a guarded statement list,
/// implementing both encodings of Section 7.2:
///
///  * Quadratic: k slots; slot i holds every statement guarded by
///    `order[i] == j`, with a static no-duplicates constraint. k^2 entries
///    and k*lg(k) control bits.
///  * Exponential: statements are inserted one at a time; inserting into
///    an expanded list of length L yields L+1 guarded copies, so statement
///    m appears 2^m times and the list has 2^k - 1 entries, with ~k^2/2
///    control bits. Redundant (several hole values give the same order)
///    but often far cheaper when the block mixes expensive and cheap
///    statements — the ablation bench measures exactly this tradeoff.
///
/// The same expansion drives the flattener (which emits the guarded steps)
/// and the printer (which reconstructs the chosen order from a candidate).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_IR_REORDEREXPAND_H
#define PSKETCH_IR_REORDEREXPAND_H

#include "ir/Program.h"

#include <vector>

namespace psketch {
namespace ir {

/// One entry of an expanded reorder block: a child statement guarded by a
/// hole-only condition (null = unconditional).
struct ReorderEntry {
  StmtRef Child = nullptr;
  ExprRef Cond = nullptr;
};

/// Expands reorder statement \p S (building guard expressions in \p P).
/// The returned entries, executed in order with their guards, realize
/// every ordering the encoding can express.
std::vector<ReorderEntry> expandReorder(Program &P, const Stmt *S);

} // namespace ir
} // namespace psketch

#endif // PSKETCH_IR_REORDEREXPAND_H
