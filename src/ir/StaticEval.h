//===- ir/StaticEval.h - Partial evaluation over holes ----------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluation of hole-only expressions under a (possibly partial) hole
/// assignment. Used by the pretty-printer to render resolved sketches, by
/// the interpreter to skip statically dead steps (e.g. the unselected
/// copies inside a reorder encoding), and by the model checker's
/// partial-order reduction.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_IR_STATICEVAL_H
#define PSKETCH_IR_STATICEVAL_H

#include "ir/Expr.h"
#include "ir/HoleAssignment.h"
#include "ir/Program.h"

#include <optional>

namespace psketch {
namespace ir {

/// Evaluates \p E if it depends only on constants and holes assigned in
/// \p Holes. \returns std::nullopt when the expression reads program state
/// or an out-of-range hole.
std::optional<int64_t> tryEvalStatic(const Program &P, ExprRef E,
                                     const HoleAssignment &Holes);

} // namespace ir
} // namespace psketch

#endif // PSKETCH_IR_STATICEVAL_H
