//===- ir/Program.h - A whole sketch program --------------------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program owns everything a sketch consists of: the node-record layout,
/// globals, per-body locals, the hole table, the candidate-space
/// accounting for Table 1, static (hole-only) constraints such as the
/// reorder "no duplicates" requirement, and the statement trees of the
/// prologue, the forked thread bodies, and the epilogue.
///
/// It doubles as the builder: all expression/statement factory methods
/// live here and allocate from the program's arena. This is the public
/// construction API used by the examples, the benchmarks, and the
/// frontend.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_IR_PROGRAM_H
#define PSKETCH_IR_PROGRAM_H

#include "ir/Expr.h"
#include "ir/Stmt.h"
#include "support/BigCount.h"

#include <cassert>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace psketch {
namespace ir {

/// A field of the program's single node-record type.
struct Field {
  std::string Name;
  Type Ty = Type::Int;
};

/// A global variable; ArraySize == 0 means scalar.
struct Global {
  std::string Name;
  Type Ty = Type::Int;
  unsigned ArraySize = 0;
  int64_t Init = 0;
};

/// A local variable of one body (prologue, a thread, or the epilogue).
struct Local {
  std::string Name;
  Type Ty = Type::Int;
  int64_t Init = 0;
};

/// A primitive synthesis hole: an unknown in [0, NumChoices).
struct Hole {
  std::string Name;
  unsigned NumChoices = 2;
  unsigned Width = 1; ///< ceil(log2(NumChoices)), at least 1
  /// True when the hole contributed its own NumChoices factor to |C|
  /// (reorder selector holes contribute a shared k! factor instead).
  /// The static analyzer uses this to account candidate-space pruning.
  bool Counted = false;
};

/// One straight context of execution: its statement tree plus locals.
struct Body {
  std::string Name;
  StmtRef Root = nullptr;
  std::vector<Local> Locals;
};

/// Identifies a body within a program: the prologue, thread i, or the
/// epilogue. Threads are 0-based.
struct BodyId {
  enum class Kind : uint8_t { Prologue, Thread, Epilogue };
  Kind BodyKind = Kind::Prologue;
  unsigned ThreadIndex = 0;

  static BodyId prologue() { return BodyId{Kind::Prologue, 0}; }
  static BodyId thread(unsigned I) { return BodyId{Kind::Thread, I}; }
  static BodyId epilogue() { return BodyId{Kind::Epilogue, 0}; }

  bool operator==(const BodyId &O) const {
    return BodyKind == O.BodyKind && ThreadIndex == O.ThreadIndex;
  }
};

/// A complete sketch program plus its builder API.
class Program {
public:
  /// \param IntWidth   wrap width of Int arithmetic, in bits
  /// \param PoolSize   capacity of the node pool (pointers are 0..PoolSize)
  explicit Program(unsigned IntWidth = 8, unsigned PoolSize = 7);

  //===--------------------------------------------------------------------===//
  // Symbol tables.
  //===--------------------------------------------------------------------===//

  unsigned addField(const std::string &Name, Type Ty);
  unsigned addGlobal(const std::string &Name, Type Ty, int64_t Init = 0);
  unsigned addGlobalArray(const std::string &Name, Type Ty, unsigned Size,
                          int64_t Init = 0);
  unsigned addLocal(BodyId Body, const std::string &Name, Type Ty,
                    int64_t Init = 0);

  /// Creates a primitive hole with \p NumChoices alternatives and records
  /// a factor of \p NumChoices in the candidate-space size. \returns its id.
  unsigned addHole(const std::string &Name, unsigned NumChoices);

  /// Creates a hole without recording a space factor (used by reorder,
  /// whose legal count is k!, recorded separately).
  unsigned addHoleNoCount(const std::string &Name, unsigned NumChoices);

  /// Registers a candidate-space factor directly (reorder blocks record
  /// k! here).
  void addSpaceFactor(const BigCount &Factor) { SpaceFactors.push_back(Factor); }

  /// Registers a hole-only constraint every legal candidate must satisfy
  /// (e.g. reorder's "no duplicate order indices").
  void addStaticConstraint(ExprRef Constraint) {
    StaticConstraints.push_back(Constraint);
  }

  const std::vector<Field> &fields() const { return FieldTable; }
  const std::vector<Global> &globals() const { return GlobalTable; }
  const std::vector<Hole> &holes() const { return HoleTable; }
  const std::vector<ExprRef> &staticConstraints() const {
    return StaticConstraints;
  }

  /// \returns |C|: the number of semantically legal candidates (Table 1).
  BigCount candidateSpaceSize() const;

  //===--------------------------------------------------------------------===//
  // Bodies.
  //===--------------------------------------------------------------------===//

  /// Appends a new (empty) thread body; \returns its index.
  unsigned addThread(const std::string &Name);

  Body &body(BodyId Id);
  const Body &body(BodyId Id) const;
  unsigned numThreads() const { return static_cast<unsigned>(Threads.size()); }

  void setRoot(BodyId Id, StmtRef Root) { body(Id).Root = Root; }

  //===--------------------------------------------------------------------===//
  // Expression factories.
  //===--------------------------------------------------------------------===//

  ExprRef constInt(int64_t Value, Type Ty = Type::Int);
  ExprRef constBool(bool Value) { return constInt(Value ? 1 : 0, Type::Bool); }
  ExprRef null() { return constInt(0, Type::Ptr); }

  ExprRef global(unsigned Id);
  ExprRef globalAt(unsigned Id, ExprRef Index);
  ExprRef local(unsigned Slot, Type Ty);
  ExprRef field(ExprRef Pointer, unsigned FieldId);
  ExprRef holeValue(unsigned HoleId);

  /// The r-value generator `{| e1 | ... | ek |}`: creates a selector hole
  /// (space factor k) and \returns the Choice expression.
  ExprRef choose(const std::string &Name, std::vector<ExprRef> Alternatives);

  /// A generator bound to an existing selector hole. Used when one
  /// sketched method is instantiated at several call sites: every site
  /// rebuilds its alternatives over its own locals but shares the hole,
  /// so the synthesizer resolves the method once.
  ExprRef choiceOf(unsigned HoleId, std::vector<ExprRef> Alternatives);

  ExprRef add(ExprRef A, ExprRef B);
  ExprRef sub(ExprRef A, ExprRef B);
  ExprRef eq(ExprRef A, ExprRef B);
  ExprRef ne(ExprRef A, ExprRef B);
  ExprRef lt(ExprRef A, ExprRef B);
  ExprRef le(ExprRef A, ExprRef B);
  ExprRef gt(ExprRef A, ExprRef B) { return lt(B, A); }
  ExprRef ge(ExprRef A, ExprRef B) { return le(B, A); }
  ExprRef land(ExprRef A, ExprRef B);
  ExprRef lor(ExprRef A, ExprRef B);
  ExprRef lnot(ExprRef A);
  ExprRef ite(ExprRef Cond, ExprRef Then, ExprRef Else);

  //===--------------------------------------------------------------------===//
  // Location factories.
  //===--------------------------------------------------------------------===//

  Loc locGlobal(unsigned Id) const;
  Loc locGlobalAt(unsigned Id, ExprRef Index) const;
  Loc locLocal(unsigned Slot) const;
  Loc locField(ExprRef Pointer, unsigned FieldId) const;

  //===--------------------------------------------------------------------===//
  // Statement factories.
  //===--------------------------------------------------------------------===//

  StmtRef nop();
  StmtRef seq(std::vector<StmtRef> Stmts);
  StmtRef assign(Loc Target, ExprRef Value);
  /// The l-value generator `{| loc1 | ... |} = value`; creates the
  /// selector hole (space factor k).
  StmtRef choiceAssign(const std::string &Name, std::vector<Loc> Targets,
                       ExprRef Value);
  /// `Tmp = AtomicSwap(loc, Value)`; with several \p Targets the location
  /// itself is an l-value generator.
  StmtRef swap(const std::string &Name, Loc Tmp, std::vector<Loc> Targets,
               ExprRef Value);
  StmtRef ifS(ExprRef Cond, StmtRef Then, StmtRef Else = nullptr);
  StmtRef whileS(ExprRef Cond, StmtRef BodyStmt, unsigned UnrollBound);
  StmtRef atomic(StmtRef BodyStmt);
  StmtRef condAtomic(ExprRef Cond, StmtRef BodyStmt);
  StmtRef assertS(ExprRef Cond, const std::string &Label);
  StmtRef alloc(Loc Target);
  /// `reorder { ... }`: creates the selector holes for \p Enc and records
  /// the k! space factor and (for the quadratic encoding) the
  /// no-duplicates static constraint.
  StmtRef reorder(const std::string &Name, std::vector<StmtRef> Stmts,
                  ReorderEncoding Enc = ReorderEncoding::Quadratic);

  /// Creates the selector holes (and space factor / static constraints)
  /// for a reorder of \p K statements without building the statement —
  /// pair with reorderOf() to share one ordering across call sites.
  std::vector<unsigned> makeReorderHoles(const std::string &Name, unsigned K,
                                         ReorderEncoding Enc);

  /// A reorder bound to existing selector holes (from makeReorderHoles).
  StmtRef reorderOf(const std::vector<unsigned> &Holes,
                    std::vector<StmtRef> Stmts, ReorderEncoding Enc);

  /// An l-value generator assignment bound to an existing hole.
  StmtRef choiceAssignOf(unsigned HoleId, std::vector<Loc> Targets,
                         ExprRef Value);

  /// An AtomicSwap whose location generator is bound to an existing hole.
  StmtRef swapOf(unsigned HoleId, Loc Tmp, std::vector<Loc> Targets,
                 ExprRef Value);

  /// Convenience sugar: lock/unlock over an integer "owner" location,
  /// exactly the paper's Figure 7 desugaring into conditional atomics.
  /// \p Owner must be an Int location; free is -1; \p Pid is the locker.
  StmtRef lock(Loc Owner, ExprRef OwnerRead, ExprRef Pid);
  StmtRef unlock(Loc Owner, ExprRef OwnerRead, ExprRef Pid,
                 const std::string &Label);

  /// \returns the r-value reading shared location \p L (locals need the
  /// enclosing body; use local() directly for those).
  ExprRef readOfShared(const Loc &L);

  /// Compare-and-swap sugar (the Section 4.1 primitive):
  /// atomic { if (*Target == Old) *Target = New; }. \p Target must be a
  /// shared location.
  StmtRef cas(Loc Target, ExprRef OldValue, ExprRef NewValue);

  /// CAS that also records success (1/0) into the local \p SuccessFlag.
  StmtRef casFlag(Loc Target, ExprRef OldValue, ExprRef NewValue,
                  Loc SuccessFlag);

  //===--------------------------------------------------------------------===//
  // Configuration.
  //===--------------------------------------------------------------------===//

  unsigned intWidth() const { return IntWidth; }
  unsigned poolSize() const { return PoolSize; }
  void setPoolSize(unsigned Size) { PoolSize = Size; }

  /// \returns the bit width of values of type \p Ty under this program's
  /// configuration.
  unsigned widthOf(Type Ty) const;

  /// Wraps \p Value to the two's-complement range of type \p Ty; the
  /// concrete interpreter funnels every arithmetic result through this so
  /// that it agrees exactly with the symbolic bitvector semantics.
  int64_t wrap(int64_t Value, Type Ty) const;

private:
  unsigned IntWidth;
  unsigned PoolSize;

  std::vector<Field> FieldTable;
  std::vector<Global> GlobalTable;
  std::vector<Hole> HoleTable;
  std::vector<BigCount> SpaceFactors;
  std::vector<ExprRef> StaticConstraints;

  Body PrologueBody;
  std::vector<Body> Threads;
  Body EpilogueBody;

  // Arena. deque gives stable addresses.
  std::deque<Expr> ExprArena;
  std::deque<Stmt> StmtArena;

  Expr *newExpr(ExprKind Kind);
  Stmt *newStmt(StmtKind Kind);
  ExprRef binop(ExprKind Kind, ExprRef A, ExprRef B, Type ResultTy);
};

} // namespace ir
} // namespace psketch

#endif // PSKETCH_IR_PROGRAM_H
