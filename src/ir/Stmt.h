//===- ir/Stmt.h - Sketch statement IR --------------------------*- C++ -*-===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured statement IR of the PSKETCH language. The synthesis
/// constructs mirror Section 4 of the paper:
///
///  * Reorder  - the `reorder { ... }` block; its selector holes are
///    created when the block is built, so both the flattener and the
///    pretty-printer can reconstruct the chosen order.
///  * ChoiceAssign - an assignment through an l-value generator
///    `{| loc1 | loc2 |} = e`.
///  * Swap     - `tmp = AtomicSwap(loc, value)` with an optional l-value
///    generator for the swapped location.
///  * CondAtomic - the conditional atomic section `atomic (c) { ... }`,
///    the paper's sole blocking primitive (locks desugar to it, Fig. 7).
///
/// `While` carries its unroll bound: PSKETCH verifies bounded executions
/// and enforces termination with a guarded assert after the last unrolled
/// iteration (Section 6's bounded-liveness approximation).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_IR_STMT_H
#define PSKETCH_IR_STMT_H

#include "ir/Expr.h"

#include <string>
#include <vector>

namespace psketch {
namespace ir {

/// Statement node kinds.
enum class StmtKind : uint8_t {
  Nop,          ///< no-op (the resolved form of an optional statement)
  Seq,          ///< Children in order
  Assign,       ///< Target = Value
  ChoiceAssign, ///< {| TargetChoices |} = Value, selected by HoleId
  Swap,         ///< Target = AtomicSwap({| TargetChoices |}, Value)
  If,           ///< if (Cond) Children[0] else Children[1] (may be null)
  While,        ///< while (Cond) Children[0], unrolled UnrollBound times
  Atomic,       ///< atomic { Children[0] }
  CondAtomic,   ///< atomic (Cond) { Children[0] }; blocks until Cond
  Assert,       ///< assert(Cond); Label names the property
  Alloc,        ///< Target = new Node() (bump-allocated, zero fields)
  Reorder,      ///< reorder { Children... }, ordered by ReorderHoles
};

/// How a reorder block is encoded into primitive holes (Section 7.2).
enum class ReorderEncoding : uint8_t {
  Quadratic,   ///< k holes of k choices + "no duplicates" constraint
  Exponential, ///< k-1 insertion-position holes (the recursive encoding)
};

class Stmt;
using StmtRef = Stmt *;

/// A statement node, arena-owned by its Program.
class Stmt {
public:
  StmtKind Kind;
  ExprRef Cond = nullptr;  ///< If/While/CondAtomic/Assert condition
  Loc Target;              ///< Assign/Swap/Alloc destination
  ExprRef Value = nullptr; ///< Assign/ChoiceAssign/Swap source value
  std::vector<StmtRef> Children;

  /// ChoiceAssign/Swap: candidate target locations; for Swap a single
  /// entry means the location is fixed.
  std::vector<Loc> TargetChoices;
  /// Selector hole for ChoiceAssign (and Swap when TargetChoices > 1).
  unsigned HoleId = 0;

  /// Reorder: the selector holes (k order holes or k-1 insertion holes).
  std::vector<unsigned> ReorderHoles;
  ReorderEncoding Encoding = ReorderEncoding::Quadratic;

  /// While: maximum number of unrolled iterations.
  unsigned UnrollBound = 0;

  /// Assert: property name used in diagnostics; also used as a general
  /// label in trace printing.
  std::string Label;

  Stmt(StmtKind Kind) : Kind(Kind) {}
};

} // namespace ir
} // namespace psketch

#endif // PSKETCH_IR_STMT_H
