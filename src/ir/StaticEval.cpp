//===- ir/StaticEval.cpp ---------------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "ir/StaticEval.h"

using namespace psketch;
using namespace psketch::ir;

std::optional<int64_t> psketch::ir::tryEvalStatic(const Program &P, ExprRef E,
                                                  const HoleAssignment &Holes) {
  switch (E->Kind) {
  case ExprKind::ConstInt:
    return E->IntValue;
  case ExprKind::HoleRead:
    if (E->Id >= Holes.size())
      return std::nullopt;
    return P.wrap(static_cast<int64_t>(Holes[E->Id]), Type::Int);
  case ExprKind::GlobalRead:
  case ExprKind::GlobalArrayRead:
  case ExprKind::LocalRead:
  case ExprKind::FieldRead:
    return std::nullopt;
  case ExprKind::Choice: {
    if (E->Id >= Holes.size())
      return std::nullopt;
    uint64_t Pick = Holes[E->Id];
    if (Pick >= E->Ops.size())
      return std::nullopt;
    return tryEvalStatic(P, E->Ops[Pick], Holes);
  }
  case ExprKind::Not: {
    auto V = tryEvalStatic(P, E->Ops[0], Holes);
    if (!V)
      return std::nullopt;
    return *V != 0 ? 0 : 1;
  }
  case ExprKind::And: {
    auto A = tryEvalStatic(P, E->Ops[0], Holes);
    if (A && *A == 0)
      return 0; // short-circuit: RHS need not be static
    auto B = tryEvalStatic(P, E->Ops[1], Holes);
    if (!A || !B)
      return std::nullopt;
    return (*A != 0 && *B != 0) ? 1 : 0;
  }
  case ExprKind::Or: {
    auto A = tryEvalStatic(P, E->Ops[0], Holes);
    if (A && *A != 0)
      return 1;
    auto B = tryEvalStatic(P, E->Ops[1], Holes);
    if (!A || !B)
      return std::nullopt;
    return (*A != 0 || *B != 0) ? 1 : 0;
  }
  case ExprKind::Ite: {
    auto C = tryEvalStatic(P, E->Ops[0], Holes);
    if (!C)
      return std::nullopt;
    return tryEvalStatic(P, E->Ops[*C != 0 ? 1 : 2], Holes);
  }
  default:
    break;
  }
  auto A = tryEvalStatic(P, E->Ops[0], Holes);
  auto B = tryEvalStatic(P, E->Ops[1], Holes);
  if (!A || !B)
    return std::nullopt;
  switch (E->Kind) {
  case ExprKind::Add:
    return P.wrap(*A + *B, E->Ty);
  case ExprKind::Sub:
    return P.wrap(*A - *B, E->Ty);
  case ExprKind::Eq:
    return *A == *B ? 1 : 0;
  case ExprKind::Ne:
    return *A != *B ? 1 : 0;
  case ExprKind::Lt:
    return *A < *B ? 1 : 0;
  case ExprKind::Le:
    return *A <= *B ? 1 : 0;
  default:
    return std::nullopt;
  }
}
