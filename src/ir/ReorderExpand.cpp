//===- ir/ReorderExpand.cpp ------------------------------------------------===//
//
// Part of psketch-cpp.
//
//===----------------------------------------------------------------------===//

#include "ir/ReorderExpand.h"

#include <cassert>

using namespace psketch;
using namespace psketch::ir;

std::vector<ReorderEntry> psketch::ir::expandReorder(Program &P,
                                                     const Stmt *S) {
  assert(S->Kind == StmtKind::Reorder && "not a reorder block");
  unsigned K = static_cast<unsigned>(S->Children.size());
  std::vector<ReorderEntry> Entries;
  if (K == 0)
    return Entries;
  if (K == 1) {
    Entries.push_back(ReorderEntry{S->Children[0], nullptr});
    return Entries;
  }

  if (S->Encoding == ReorderEncoding::Quadratic) {
    // Slot i executes the statement j with order[i] == j.
    for (unsigned I = 0; I < K; ++I) {
      ExprRef OrderI = P.holeValue(S->ReorderHoles[I]);
      for (unsigned J = 0; J < K; ++J)
        Entries.push_back(ReorderEntry{
            S->Children[J], P.eq(OrderI, P.constInt(static_cast<int64_t>(J)))});
    }
    return Entries;
  }

  // Exponential (insertion) encoding: start from s0 and insert each next
  // statement into one of the L+1 gaps of the current expanded list.
  Entries.push_back(ReorderEntry{S->Children[0], nullptr});
  for (unsigned M = 1; M < K; ++M) {
    ExprRef InsertHole = P.holeValue(S->ReorderHoles[M - 1]);
    std::vector<ReorderEntry> Next;
    unsigned L = static_cast<unsigned>(Entries.size());
    for (unsigned Gap = 0; Gap < L; ++Gap) {
      Next.push_back(ReorderEntry{
          S->Children[M],
          P.eq(InsertHole, P.constInt(static_cast<int64_t>(Gap)))});
      Next.push_back(Entries[Gap]);
    }
    Next.push_back(ReorderEntry{
        S->Children[M], P.eq(InsertHole, P.constInt(static_cast<int64_t>(L)))});
    Entries = std::move(Next);
  }
  return Entries;
}
