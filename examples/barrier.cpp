//===- examples/barrier.cpp - Section 8.2.2 --------------------------------===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
// Synthesizes the sense-reversing barrier's next() method from the
// operation soup of Section 8.2.2: flip the local sense, publish it,
// fetch-and-decrement the count, conditionally reset-and-wake, and
// conditionally wait — predicates and orderings all synthesized.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Barrier.h"
#include "cegis/Cegis.h"

#include <cstdio>

using namespace psketch;
using namespace psketch::bench;

int main() {
  BarrierOptions O;
  O.Threads = 2;
  O.Rounds = 3;
  O.Full = true; // barrier2: the full sketch (about 1e7 candidates)
  auto P = buildBarrier(O);
  std::printf("barrier2 N=%u B=%u, |C| = %s\n", O.Threads, O.Rounds,
              P->candidateSpaceSize().str().c_str());

  cegis::CegisConfig Cfg;
  Cfg.Log = [](const std::string &Message) {
    std::printf("  %s\n", Message.c_str());
  };
  cegis::ConcurrentCegis C(*P, Cfg);
  cegis::CegisResult R = C.run();
  std::printf("resolvable=%s in %u iterations (%.2fs)\n",
              R.Stats.Resolvable ? "yes" : "no", R.Stats.Iterations,
              R.Stats.TotalSeconds);
  if (!R.Stats.Resolvable)
    return 1;

  std::printf("\nresolved barrier (one next() instantiation shown in the "
              "thread bodies):\n%s\n",
              C.printResolved(R).c_str());

  // Decode the interesting holes for a compact summary.
  auto Holes = P->holes();
  std::printf("synthesized choices:\n");
  for (size_t I = 0; I < Holes.size(); ++I)
    if (Holes[I].Name.find("form") != std::string::npos ||
        Holes[I].Name.find(".k") != std::string::npos)
      std::printf("  %-22s = %llu\n", Holes[I].Name.c_str(),
                  static_cast<unsigned long long>(R.Candidate[I]));
  return 0;
}
