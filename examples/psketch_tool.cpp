//===- examples/psketch_tool.cpp - a CLI driver for .psk files -------------===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
// Usage: psketch_tool [--lint] [--no-prescreen] [--jobs N] [--seed S]
//                     [--visited exact|fingerprint]
//                     [--visited-store memory|spill] [--spill-dir path]
//                     [--spill-budget-mb N] [--por off|local|ample]
//                     [--symmetry on|off] [--absint on|off]
//                     [--shape on|off] [--warm-start on|off]
//                     [--dump-cnf path] [--stats] [file.psk ...]
//
// Default mode parses one mini-PSketch source file, runs concurrent CEGIS
// (with the static pre-screen analyzer unless --no-prescreen), and prints
// the resolved implementation. With no file it runs the bundled
// lock-free-enqueue demo equivalent to examples/enqueue.psk.
//
// --jobs N runs the model checker with N workers (0 = hardware
// concurrency, default 1 = the sequential checker); --seed S seeds the
// random-schedule falsifier (see the reproducibility contract in
// verify/ModelChecker.h); --visited picks the checker's seen-state
// representation (exact keys, the default, or 8-byte fingerprints — see
// docs/PARALLEL.md §5 for the soundness trade); --visited-store picks the
// visited tiering (memory, the default, or spill — a disk-backed
// fingerprint tier that evicts fully-explored states to sorted mmap'd
// runs when --spill-budget-mb is exceeded; see docs/SPILL.md; verdicts
// and deterministic counterexamples are identical either way);
// --spill-dir picks the spill scratch directory (default: the system
// temp dir; the per-run subdirectory is removed on exit);
// --spill-budget-mb bounds the in-RAM visited tier in MiB (0 =
// unlimited; in memory mode a nonzero budget is an abort watermark — the
// search stops with an exhausted-budget verdict instead of swapping);
// --por picks the checker's
// partial-order reduction (off, local, or the default ample — see
// docs/POR.md; verdicts are identical in all three modes); --symmetry
// toggles symmetry reduction (on, the default, proves thread orbits
// statically and canonicalizes states — see docs/SYMMETRY.md; verdicts
// are identical either way); --absint toggles the per-candidate
// thread-modular abstract interpreter (on, the default, interval-refutes
// candidates without verifier calls and tunes the Machine with proven
// bounds and locksets — see docs/ANALYSIS.md; verdicts are identical
// either way); --shape toggles the allocation-site points-to + shape
// pass (on, the default, overridable via PSKETCH_SHAPE=off: lints heap
// races/leaks/null derefs and splits the Machine's heap footprint into
// per-(site, field) bits for site-aware POR — see docs/ANALYSIS.md
// Pass 5; verdicts are identical either way); --warm-start toggles the
// synthesizer's warm-started
// incremental SAT core (on, the default, continues one CDCL search
// across CEGIS iterations — see docs/SOLVER.md; off reproduces the
// from-scratch solver trajectory; the verdict is identical either way);
// --dump-cnf writes the live incremental SAT instance as DIMACS (with a
// hole-variable comment map) when the run finishes, for offline triage;
// --stats prints the checker's observability counters and the
// per-iteration solver telemetry in one aligned block after the run.
// Bad values are typed diagnostics with a nonzero exit, like every
// other usage error.
//
// --lint runs the frontend validator and all three analysis passes over
// every given file, prints the diagnostics, and skips synthesis. Exit
// status: 0 clean, 1 on any error-severity diagnostic or unreadable /
// unparsable input.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "cegis/Cegis.h"
#include "desugar/Flatten.h"
#include "frontend/Parser.h"
#include "support/Hash.h"

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace psketch;

/// The demo sketch: the Section 2 Enqueue, in the textual language.
static const char *DemoSource = R"(
// Lock-free queue Enqueue, sketched (cf. Figure 1 of the paper).
pool 3;
struct Node { Node next; int stored; int taken; }
global Node prevHead;
global Node tail;

prologue {
  var Node dummy;
  dummy = new;
  dummy.taken = 1;
  prevHead = dummy;
  tail = dummy;
}

fork (i, 2) {
  var Node newEntry;
  var Node tmp;
  newEntry = new;
  newEntry.stored = i + 1;
  tmp = AtomicSwap(tail, newEntry);
  {| tmp.next | tail.next |} = {| newEntry | tmp |};
}

epilogue {
  // Structural integrity: both nodes linked behind the dummy, tail last.
  assert prevHead != null : "head";
  assert tail != null : "tail";
  assert tail.next == null : "tail is last";
  assert prevHead.next != null : "first enqueue linked";
  assert prevHead.next.next != null : "second enqueue linked";
  assert prevHead.next.next == tail : "tail reachable";
}
)";

namespace {

void printDiag(const analysis::Diagnostic &D) {
  std::fprintf(stderr, "%s\n", analysis::render(D).c_str());
}

/// Reads \p Path (or the demo when null). \returns false on I/O error.
bool readSource(const char *Path, std::string &Out) {
  if (!Path) {
    Out = DemoSource;
    return true;
  }
  std::ifstream File(Path);
  if (!File) {
    printDiag({analysis::Severity::Error, "frontend",
               std::string("cannot open ") + Path, ""});
    return false;
  }
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  Out = Buffer.str();
  return true;
}

/// Parses and validates one source. \returns null after printing
/// diagnostics when the program is unusable.
std::unique_ptr<ir::Program> loadProgram(const char *Path,
                                         const std::string &Source) {
  frontend::ParseResult Parsed = frontend::parseProgram(Source);
  if (!Parsed.ok()) {
    printDiag({analysis::Severity::Error, "frontend", Parsed.Error,
               Path ? Path : "<demo>"});
    return nullptr;
  }
  std::vector<analysis::Diagnostic> Bad =
      analysis::validateProgram(*Parsed.Program);
  if (!Bad.empty()) {
    for (const analysis::Diagnostic &D : Bad)
      printDiag(D);
    return nullptr;
  }
  return std::move(Parsed.Program);
}

/// --lint over one file. \returns the number of error diagnostics (or 1
/// when the file does not even load).
unsigned lintFile(const char *Path) {
  std::string Source;
  if (!readSource(Path, Source))
    return 1;
  std::unique_ptr<ir::Program> P = loadProgram(Path, Source);
  if (!P)
    return 1;

  std::printf("== %s ==\n", Path ? Path : "<demo>");
  flat::FlatProgram FP = flat::flatten(*P);
  analysis::AnalysisResult A = analysis::analyze(*P, FP);
  unsigned Errors = 0;
  for (const analysis::Diagnostic &D : A.Diags) {
    printDiag(D);
    if (D.Sev == analysis::Severity::Error)
      ++Errors;
  }
  std::printf("%zu finding(s): %u error(s); pruned %zu hole value(s), "
              "%zu subspace exclusion(s)\n",
              A.Diags.size(), Errors, A.Bans.size(), A.Exclusions.size());
  return Errors;
}

/// Parses the unsigned integer argument of \p Flag. \returns false after
/// printing a typed diagnostic when the value is missing or malformed.
bool parseUnsigned(const char *Flag, const char *Text, uint64_t Max,
                   uint64_t &Out) {
  if (!Text || !*Text) {
    printDiag({analysis::Severity::Error, "cli",
               std::string(Flag) + " requires a non-negative integer", ""});
    return false;
  }
  char *End = nullptr;
  errno = 0;
  unsigned long long Value = std::strtoull(Text, &End, 10);
  if (errno != 0 || *End != '\0' || Value > Max ||
      !std::isdigit(static_cast<unsigned char>(Text[0]))) {
    printDiag({analysis::Severity::Error, "cli",
               std::string(Flag) + ": bad value '" + Text + "'", ""});
    return false;
  }
  Out = Value;
  return true;
}

/// Parses the --por mode argument. \returns false after printing a typed
/// diagnostic when the value is missing or not a known mode.
bool parsePor(const char *Text, verify::PorMode &Out) {
  if (Text && std::strcmp(Text, "off") == 0) {
    Out = verify::PorMode::Off;
    return true;
  }
  if (Text && std::strcmp(Text, "local") == 0) {
    Out = verify::PorMode::Local;
    return true;
  }
  if (Text && std::strcmp(Text, "ample") == 0) {
    Out = verify::PorMode::Ample;
    return true;
  }
  printDiag({analysis::Severity::Error, "cli",
             std::string("--por: bad value '") + (Text ? Text : "") +
                 "' (expected 'off', 'local' or 'ample')",
             ""});
  return false;
}

/// Parses the --symmetry mode argument. \returns false after printing a
/// typed diagnostic when the value is missing or not a known mode.
bool parseSymmetry(const char *Text, verify::SymmetryMode &Out) {
  if (Text && std::strcmp(Text, "on") == 0) {
    Out = verify::SymmetryMode::Orbit;
    return true;
  }
  if (Text && std::strcmp(Text, "off") == 0) {
    Out = verify::SymmetryMode::Off;
    return true;
  }
  printDiag({analysis::Severity::Error, "cli",
             std::string("--symmetry: bad value '") + (Text ? Text : "") +
                 "' (expected 'on' or 'off')",
             ""});
  return false;
}

/// Parses the --absint mode argument. \returns false after printing a
/// typed diagnostic when the value is missing or not a known mode.
bool parseAbsInt(const char *Text, bool &Out) {
  if (Text && std::strcmp(Text, "on") == 0) {
    Out = true;
    return true;
  }
  if (Text && std::strcmp(Text, "off") == 0) {
    Out = false;
    return true;
  }
  printDiag({analysis::Severity::Error, "cli",
             std::string("--absint: bad value '") + (Text ? Text : "") +
                 "' (expected 'on' or 'off')",
             ""});
  return false;
}

/// Parses the --shape mode argument. \returns false after printing a
/// typed diagnostic when the value is missing or not a known mode.
bool parseShape(const char *Text, bool &Out) {
  if (Text && std::strcmp(Text, "on") == 0) {
    Out = true;
    return true;
  }
  if (Text && std::strcmp(Text, "off") == 0) {
    Out = false;
    return true;
  }
  printDiag({analysis::Severity::Error, "cli",
             std::string("--shape: bad value '") + (Text ? Text : "") +
                 "' (expected 'on' or 'off')",
             ""});
  return false;
}

/// Parses the --warm-start mode argument. \returns false after printing
/// a typed diagnostic when the value is missing or not a known mode.
bool parseWarmStart(const char *Text, bool &Out) {
  if (Text && std::strcmp(Text, "on") == 0) {
    Out = true;
    return true;
  }
  if (Text && std::strcmp(Text, "off") == 0) {
    Out = false;
    return true;
  }
  printDiag({analysis::Severity::Error, "cli",
             std::string("--warm-start: bad value '") + (Text ? Text : "") +
                 "' (expected 'on' or 'off')",
             ""});
  return false;
}

/// --stats: the checker/CEGIS observability counters, one aligned block.
void printStats(const cegis::CegisStats &S) {
  std::printf("stats:\n");
  std::printf("  %-20s %llu\n", "StatesExplored",
              static_cast<unsigned long long>(S.StatesExplored));
  std::printf("  %-20s %llu\n", "AmpleStates",
              static_cast<unsigned long long>(S.AmpleStates));
  std::printf("  %-20s %llu\n", "FullExpansions",
              static_cast<unsigned long long>(S.FullExpansions));
  std::printf("  %-20s %llu\n", "SleepSkips",
              static_cast<unsigned long long>(S.SleepSkips));
  std::printf("  %-20s %u\n", "SymmetryOrbits", S.SymmetryOrbits);
  std::printf("  %-20s %llu\n", "CanonHits",
              static_cast<unsigned long long>(S.CanonHits));
  std::printf("  %-20s %.4fs\n", "CanonTime", S.CanonTime);
  std::printf("  %-20s %llu\n", "IntervalPrunes",
              static_cast<unsigned long long>(S.IntervalPrunes));
  std::printf("  %-20s %u\n", "RaceWarnings", S.RaceWarnings);
  std::printf("  %-20s %u\n", "TightenedBits", S.TightenedBits);
  std::printf("  %-20s %llu\n", "LockIndepPairs",
              static_cast<unsigned long long>(S.LockIndepPairs));
  std::printf("  %-20s %u\n", "ShapeSites", S.ShapeSites);
  std::printf("  %-20s %llu\n", "MustNotAliasPairs",
              static_cast<unsigned long long>(S.MustNotAliasPairs));
  std::printf("  %-20s %llu\n", "SiteIndepPairs",
              static_cast<unsigned long long>(S.SiteIndepPairs));
  std::printf("  %-20s %llu\n", "ShapeFalsePrunes",
              static_cast<unsigned long long>(S.ShapeFalsePrunes));
  std::printf("  %-20s %u\n", "HeapRaceWarnings", S.HeapRaceWarnings);
  std::printf("  %-20s %llu\n", "SpilledStates",
              static_cast<unsigned long long>(S.SpilledStates));
  std::printf("  %-20s %llu\n", "SpillBytes",
              static_cast<unsigned long long>(S.SpillBytes));
  std::printf("  %-20s %llu\n", "RunMerges",
              static_cast<unsigned long long>(S.RunMerges));
  std::printf("  %-20s %llu\n", "FilterFalseHits",
              static_cast<unsigned long long>(S.FilterFalseHits));
  std::printf("  %-20s %s\n", "SpillFallback", S.SpillFallback ? "yes" : "no");
  std::printf("  %-20s %zu\n", "SolverSolves", S.SolveLog.size());
  std::printf("  %-20s %llu\n", "SolverProbes",
              static_cast<unsigned long long>(S.SolverProbes));
  uint64_t Conflicts = 0, Restarts = 0;
  for (const synth::SolveRecord &Rec : S.SolveLog) {
    Conflicts += Rec.Conflicts;
    Restarts += Rec.Restarts;
  }
  std::printf("  %-20s %llu\n", "SolverConflicts",
              static_cast<unsigned long long>(Conflicts));
  std::printf("  %-20s %llu\n", "SolverRestarts",
              static_cast<unsigned long long>(Restarts));
  if (!S.SolveLog.empty()) {
    std::printf("  per-solve Ssolve (s / conflicts / decisions / restarts / "
                "learnts / result):\n");
    for (size_t I = 0; I < S.SolveLog.size(); ++I) {
      const synth::SolveRecord &Rec = S.SolveLog[I];
      std::printf("    #%-3zu %8.4f %8llu %9llu %5llu %8zu %s\n", I,
                  Rec.Seconds, static_cast<unsigned long long>(Rec.Conflicts),
                  static_cast<unsigned long long>(Rec.Decisions),
                  static_cast<unsigned long long>(Rec.Restarts),
                  Rec.LearntClauses, Rec.Sat ? "sat" : "unsat");
    }
  }
}

/// Parses the --visited mode argument. \returns false after printing a
/// typed diagnostic when the value is missing or not a known mode.
bool parseVisited(const char *Text, verify::VisitedMode &Out) {
  if (Text && std::strcmp(Text, "exact") == 0) {
    Out = verify::VisitedMode::Exact;
    return true;
  }
  if (Text && std::strcmp(Text, "fingerprint") == 0) {
    Out = verify::VisitedMode::Fingerprint;
    return true;
  }
  printDiag({analysis::Severity::Error, "cli",
             std::string("--visited: bad value '") + (Text ? Text : "") +
                 "' (expected 'exact' or 'fingerprint')",
             ""});
  return false;
}

/// Parses the --visited-store tier argument. \returns false after
/// printing a typed diagnostic when the value is missing or not a known
/// tier.
bool parseVisitedStore(const char *Text, verify::VisitedStore &Out) {
  if (Text && std::strcmp(Text, "memory") == 0) {
    Out = verify::VisitedStore::Memory;
    return true;
  }
  if (Text && std::strcmp(Text, "spill") == 0) {
    Out = verify::VisitedStore::Spill;
    return true;
  }
  printDiag({analysis::Severity::Error, "cli",
             std::string("--visited-store: bad value '") + (Text ? Text : "") +
                 "' (expected 'memory' or 'spill')",
             ""});
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Lint = false, Prescreen = true, Stats = false, AbsInt = true;
  bool Shape = analysis::defaultShape();
  bool WarmStart = synth::defaultWarmStart();
  std::string DumpCnfPath;
  uint64_t Jobs = 1, Seed = 1, Batch = 1, SpillBudgetMb = 0;
  verify::VisitedMode Visited = verify::VisitedMode::Exact;
  verify::VisitedStore Store = verify::VisitedStore::Memory;
  std::string SpillDir;
  verify::PorMode Por = verify::PorMode::Ample;
  verify::SymmetryMode Symmetry = verify::SymmetryMode::Orbit;
  std::vector<const char *> Files;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--lint") == 0)
      Lint = true;
    else if (std::strcmp(Argv[I], "--no-prescreen") == 0)
      Prescreen = false;
    else if (std::strcmp(Argv[I], "--jobs") == 0) {
      if (!parseUnsigned("--jobs", I + 1 < Argc ? Argv[++I] : nullptr,
                         1u << 10, Jobs))
        return 1;
    } else if (std::strcmp(Argv[I], "--seed") == 0) {
      if (!parseUnsigned("--seed", I + 1 < Argc ? Argv[++I] : nullptr,
                         UINT64_MAX, Seed))
        return 1;
    } else if (std::strcmp(Argv[I], "--visited") == 0) {
      if (!parseVisited(I + 1 < Argc ? Argv[++I] : nullptr, Visited))
        return 1;
    } else if (std::strncmp(Argv[I], "--visited=", 10) == 0) {
      if (!parseVisited(Argv[I] + 10, Visited))
        return 1;
    } else if (std::strcmp(Argv[I], "--visited-store") == 0) {
      if (!parseVisitedStore(I + 1 < Argc ? Argv[++I] : nullptr, Store))
        return 1;
    } else if (std::strncmp(Argv[I], "--visited-store=", 16) == 0) {
      if (!parseVisitedStore(Argv[I] + 16, Store))
        return 1;
    } else if (std::strcmp(Argv[I], "--spill-dir") == 0) {
      if (I + 1 >= Argc || !*Argv[I + 1]) {
        printDiag({analysis::Severity::Error, "cli",
                   "--spill-dir requires a directory path", ""});
        return 1;
      }
      SpillDir = Argv[++I];
    } else if (std::strncmp(Argv[I], "--spill-dir=", 12) == 0) {
      SpillDir = Argv[I] + 12;
      if (SpillDir.empty()) {
        printDiag({analysis::Severity::Error, "cli",
                   "--spill-dir requires a directory path", ""});
        return 1;
      }
    } else if (std::strcmp(Argv[I], "--spill-budget-mb") == 0) {
      if (!parseUnsigned("--spill-budget-mb",
                         I + 1 < Argc ? Argv[++I] : nullptr, 1u << 24,
                         SpillBudgetMb))
        return 1;
    } else if (std::strncmp(Argv[I], "--spill-budget-mb=", 18) == 0) {
      if (!parseUnsigned("--spill-budget-mb", Argv[I] + 18, 1u << 24,
                         SpillBudgetMb))
        return 1;
    } else if (std::strcmp(Argv[I], "--por") == 0) {
      if (!parsePor(I + 1 < Argc ? Argv[++I] : nullptr, Por))
        return 1;
    } else if (std::strncmp(Argv[I], "--por=", 6) == 0) {
      if (!parsePor(Argv[I] + 6, Por))
        return 1;
    } else if (std::strcmp(Argv[I], "--symmetry") == 0) {
      if (!parseSymmetry(I + 1 < Argc ? Argv[++I] : nullptr, Symmetry))
        return 1;
    } else if (std::strncmp(Argv[I], "--symmetry=", 11) == 0) {
      if (!parseSymmetry(Argv[I] + 11, Symmetry))
        return 1;
    } else if (std::strcmp(Argv[I], "--absint") == 0) {
      if (!parseAbsInt(I + 1 < Argc ? Argv[++I] : nullptr, AbsInt))
        return 1;
    } else if (std::strncmp(Argv[I], "--absint=", 9) == 0) {
      if (!parseAbsInt(Argv[I] + 9, AbsInt))
        return 1;
    } else if (std::strcmp(Argv[I], "--shape") == 0) {
      if (!parseShape(I + 1 < Argc ? Argv[++I] : nullptr, Shape))
        return 1;
    } else if (std::strncmp(Argv[I], "--shape=", 8) == 0) {
      if (!parseShape(Argv[I] + 8, Shape))
        return 1;
    } else if (std::strcmp(Argv[I], "--warm-start") == 0) {
      if (!parseWarmStart(I + 1 < Argc ? Argv[++I] : nullptr, WarmStart))
        return 1;
    } else if (std::strncmp(Argv[I], "--warm-start=", 13) == 0) {
      if (!parseWarmStart(Argv[I] + 13, WarmStart))
        return 1;
    } else if (std::strcmp(Argv[I], "--dump-cnf") == 0) {
      if (I + 1 >= Argc || !*Argv[I + 1]) {
        printDiag({analysis::Severity::Error, "cli",
                   "--dump-cnf requires an output path", ""});
        return 1;
      }
      DumpCnfPath = Argv[++I];
    } else if (std::strncmp(Argv[I], "--dump-cnf=", 11) == 0) {
      DumpCnfPath = Argv[I] + 11;
      if (DumpCnfPath.empty()) {
        printDiag({analysis::Severity::Error, "cli",
                   "--dump-cnf requires an output path", ""});
        return 1;
      }
    } else if (std::strcmp(Argv[I], "--batch") == 0) {
      if (!parseUnsigned("--batch", I + 1 < Argc ? Argv[++I] : nullptr,
                         1u << 12, Batch))
        return 1;
    } else if (std::strncmp(Argv[I], "--batch=", 8) == 0) {
      if (!parseUnsigned("--batch", Argv[I] + 8, 1u << 12, Batch))
        return 1;
    } else if (std::strcmp(Argv[I], "--stats") == 0) {
      Stats = true;
    } else if (std::strncmp(Argv[I], "--", 2) == 0) {
      std::fprintf(stderr,
                   "usage: psketch_tool [--lint] [--no-prescreen] "
                   "[--jobs N] [--seed S] [--batch N] "
                   "[--visited exact|fingerprint] "
                   "[--visited-store memory|spill] [--spill-dir path] "
                   "[--spill-budget-mb N] "
                   "[--por off|local|ample] "
                   "[--symmetry on|off] [--absint on|off] "
                   "[--shape on|off] "
                   "[--warm-start on|off] [--dump-cnf path] [--stats] "
                   "[file.psk ...]\n");
      return 1;
    } else
      Files.push_back(Argv[I]);
  }

  if (Batch == 0) {
    printDiag({analysis::Severity::Error, "cli",
               "--batch: bad value '0' (expected a positive width; 1 = "
               "scalar)",
               ""});
    return 1;
  }

  if (Lint) {
    if (Files.empty())
      Files.push_back(nullptr); // lint the demo
    unsigned Errors = 0;
    for (const char *Path : Files)
      Errors += lintFile(Path);
    return Errors == 0 ? 0 : 1;
  }

  if (Files.size() > 1) {
    std::fprintf(stderr,
                 "error: synthesis mode takes one file (use --lint for "
                 "batches)\n");
    return 1;
  }
  const char *Path = Files.empty() ? nullptr : Files.front();
  if (!Path)
    std::printf("(no input file: running the bundled enqueue demo; see "
                "examples/enqueue.psk)\n\n");
  std::string Source;
  if (!readSource(Path, Source))
    return 1;
  std::unique_ptr<ir::Program> Loaded = loadProgram(Path, Source);
  if (!Loaded)
    return 1;
  ir::Program &P = *Loaded;
  std::printf("parsed: %u thread(s), %zu hole(s), |C| = %s\n", P.numThreads(),
              P.holes().size(), P.candidateSpaceSize().str().c_str());

  cegis::CegisConfig Cfg;
  Cfg.Prescreen = Prescreen;
  Cfg.Checker.NumThreads = static_cast<unsigned>(Jobs);
  Cfg.Checker.Seed = Seed;
  Cfg.Checker.BatchWidth = static_cast<unsigned>(Batch);
  if (Batch >= 2)
    std::printf("checker: batched frontier, width %u (SIMD %s)\n",
                static_cast<unsigned>(Batch), psketch::simdMode());
  Cfg.Checker.Visited = Visited;
  if (Visited == verify::VisitedMode::Fingerprint)
    std::printf("checker: fingerprint visited set (64-bit hash "
                "compaction; sound up to hash collisions)\n");
  Cfg.Checker.Store = Store;
  Cfg.Checker.SpillDir = SpillDir;
  Cfg.Checker.VisitedBudgetBytes = SpillBudgetMb << 20;
  if (Store == verify::VisitedStore::Spill)
    std::printf("checker: spill visited store (%s; budget %llu MiB%s)\n",
                SpillDir.empty() ? "system temp dir" : SpillDir.c_str(),
                static_cast<unsigned long long>(SpillBudgetMb),
                SpillBudgetMb ? "" : " = unlimited, spill idle");
  else if (SpillBudgetMb)
    std::printf("checker: visited budget %llu MiB (memory store: abort "
                "watermark)\n",
                static_cast<unsigned long long>(SpillBudgetMb));
  Cfg.Checker.Por = Por;
  if (Por != verify::PorMode::Ample)
    std::printf("checker: partial-order reduction %s (default: ample)\n",
                Por == verify::PorMode::Off ? "off" : "local-only");
  Cfg.Checker.Symmetry = Symmetry;
  if (Symmetry == verify::SymmetryMode::Off)
    std::printf("checker: symmetry reduction off (default: on)\n");
  Cfg.AbsInt = AbsInt;
  Cfg.Analysis.AbsInt = AbsInt;
  if (!AbsInt)
    std::printf("cegis: abstract-interpretation screen off (default: on)\n");
  Cfg.Shape = Shape;
  Cfg.Analysis.Shape = Shape;
  if (!Shape)
    std::printf("cegis: points-to/shape pass off (default: on)\n");
  Cfg.SolverWarmStart = WarmStart;
  if (!WarmStart)
    std::printf("synth: warm-started solver off (default: on) — "
                "from-scratch solves\n");
  Cfg.DumpCnfPath = DumpCnfPath;
  Cfg.Log = [](const std::string &Message) {
    std::printf("  %s\n", Message.c_str());
  };
  unsigned Workers = verify::resolvedNumThreads(Cfg.Checker);
  if (Workers > 1)
    std::printf("checker: %u workers (seed %llu)\n", Workers,
                static_cast<unsigned long long>(Seed));
  cegis::ConcurrentCegis C(P, Cfg);
  cegis::CegisResult R = C.run();
  for (const analysis::Diagnostic &D : R.Diags)
    if (D.Sev != analysis::Severity::Note)
      printDiag(D);
  if (!R.Stats.Resolvable) {
    std::printf("UNRESOLVABLE after %u iterations (%.2fs)%s\n",
                R.Stats.Iterations, R.Stats.TotalSeconds,
                R.Stats.Aborted ? " [budget hit]" : "");
    if (Stats)
      printStats(R.Stats);
    return 2;
  }
  std::printf("resolved in %u iterations (%.2fs)\n\n%s", R.Stats.Iterations,
              R.Stats.TotalSeconds, C.printResolved(R).c_str());
  if (Stats)
    printStats(R.Stats);
  return 0;
}
