//===- examples/psketch_tool.cpp - a CLI driver for .psk files -------------===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
// Usage: psketch_tool [file.psk]
//
// Parses a mini-PSketch source file, runs concurrent CEGIS, and prints
// the resolved implementation (or reports that the sketch cannot be
// resolved, or a parse diagnostic). With no argument it runs the bundled
// lock-free-enqueue demo equivalent to examples/enqueue.psk.
//
//===----------------------------------------------------------------------===//

#include "cegis/Cegis.h"
#include "frontend/Parser.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace psketch;

/// The demo sketch: the Section 2 Enqueue, in the textual language.
static const char *DemoSource = R"(
// Lock-free queue Enqueue, sketched (cf. Figure 1 of the paper).
pool 3;
struct Node { Node next; int stored; int taken; }
global Node prevHead;
global Node tail;

prologue {
  var Node dummy;
  dummy = new;
  dummy.taken = 1;
  prevHead = dummy;
  tail = dummy;
}

fork (i, 2) {
  var Node newEntry;
  var Node tmp;
  newEntry = new;
  newEntry.stored = i + 1;
  tmp = AtomicSwap(tail, newEntry);
  {| tmp.next | tail.next |} = {| newEntry | tmp |};
}

epilogue {
  // Structural integrity: both nodes linked behind the dummy, tail last.
  assert prevHead != null : "head";
  assert tail != null : "tail";
  assert tail.next == null : "tail is last";
  assert prevHead.next != null : "first enqueue linked";
  assert prevHead.next.next != null : "second enqueue linked";
  assert prevHead.next.next == tail : "tail reachable";
}
)";

int main(int Argc, char **Argv) {
  std::string Source;
  if (Argc > 1) {
    std::ifstream File(Argv[1]);
    if (!File) {
      std::fprintf(stderr, "error: cannot open %s\n", Argv[1]);
      return 1;
    }
    std::stringstream Buffer;
    Buffer << File.rdbuf();
    Source = Buffer.str();
  } else {
    std::printf("(no input file: running the bundled enqueue demo; see "
                "examples/enqueue.psk)\n\n");
    Source = DemoSource;
  }

  frontend::ParseResult Parsed = frontend::parseProgram(Source);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  ir::Program &P = *Parsed.Program;
  std::printf("parsed: %u thread(s), %zu hole(s), |C| = %s\n", P.numThreads(),
              P.holes().size(), P.candidateSpaceSize().str().c_str());

  cegis::CegisConfig Cfg;
  Cfg.Log = [](const std::string &Message) {
    std::printf("  %s\n", Message.c_str());
  };
  cegis::ConcurrentCegis C(P, Cfg);
  cegis::CegisResult R = C.run();
  if (!R.Stats.Resolvable) {
    std::printf("UNRESOLVABLE after %u iterations (%.2fs)%s\n",
                R.Stats.Iterations, R.Stats.TotalSeconds,
                R.Stats.Aborted ? " [budget hit]" : "");
    return 2;
  }
  std::printf("resolved in %u iterations (%.2fs)\n\n%s", R.Stats.Iterations,
              R.Stats.TotalSeconds, C.printResolved(R).c_str());
  return 0;
}
