//===- examples/fine_set.cpp - Figures 5 and 6 -----------------------------===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
// Synthesizes hand-over-hand locking for the sorted-list Set: the
// traversal loop's lock/unlock placement, conditions, targets and
// ordering (Figure 5's sketch), expecting the sliding-window discipline
// of Figure 6 — lock ahead, release behind, then advance.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/FineSet.h"
#include "benchmarks/Workload.h"
#include "cegis/Cegis.h"

#include <cstdio>

using namespace psketch;
using namespace psketch::bench;

int main() {
  FineSetOptions O;
  O.Full = true; // fineset2, about 1.3e7 candidates
  auto P = buildFineSet(parseWorkload("ar(ar|ar)"), O);
  std::printf("fineset2 ar(ar|ar), |C| = %s\n",
              P->candidateSpaceSize().str().c_str());

  cegis::CegisConfig Cfg;
  Cfg.Log = [](const std::string &Message) {
    std::printf("  %s\n", Message.c_str());
  };
  cegis::ConcurrentCegis C(*P, Cfg);
  cegis::CegisResult R = C.run();
  std::printf("resolvable=%s in %u iterations (%.2fs)\n",
              R.Stats.Resolvable ? "yes" : "no", R.Stats.Iterations,
              R.Stats.TotalSeconds);
  if (!R.Stats.Resolvable)
    return 1;
  std::printf("\nresolved find() traversal (all op instantiations):\n%s\n",
              C.printResolved(R).c_str());
  return 0;
}
