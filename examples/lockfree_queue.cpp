//===- examples/lockfree_queue.cpp - Sections 2 and 8.2.1 ------------------===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
// Synthesizes the AtomicSwap-based lock-free queue: first the full
// Figure 1 Enqueue sketch (about 2.8 million candidates), then the
// combined Enqueue + single-while-loop Dequeue sketch (queueDE2, about
// 8e8 candidates), printing the resolved implementations — the analogue
// of the paper's Figures 2 and 4.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Queue.h"
#include "benchmarks/Workload.h"
#include "cegis/Cegis.h"

#include <cstdio>

using namespace psketch;
using namespace psketch::bench;

static void synthesize(const char *Title, const QueueOptions &O,
                       const char *Pattern) {
  std::printf("== %s (workload %s) ==\n", Title, Pattern);
  auto P = buildQueue(parseWorkload(Pattern), O);
  std::printf("candidate space |C| = %s\n",
              P->candidateSpaceSize().str().c_str());

  cegis::CegisConfig Cfg;
  Cfg.Log = [](const std::string &Message) {
    std::printf("  %s\n", Message.c_str());
  };
  cegis::ConcurrentCegis C(*P, Cfg);
  cegis::CegisResult R = C.run();
  std::printf("resolvable=%s in %u iterations (%.2fs: Ssolve %.2f, "
              "Smodel %.2f, Vsolve %.2f)\n",
              R.Stats.Resolvable ? "yes" : "no", R.Stats.Iterations,
              R.Stats.TotalSeconds, R.Stats.SsolveSeconds,
              R.Stats.SmodelSeconds, R.Stats.VsolveSeconds);
  if (R.Stats.Resolvable)
    std::printf("\nresolved implementation:\n%s\n",
                C.printResolved(R).c_str());
}

int main() {
  // The Figure 1 Enqueue sketch: a reorder soup of an assignment, an
  // AtomicSwap and an optional guarded fixup over the aLocation/aValue
  // generators. The expected resolution (Figure 2):
  //   tmp = AtomicSwap(tail, newEntry); tmp.next = newEntry;
  synthesize("Enqueue sketch (Figure 1 -> Figure 2)",
             QueueOptions{/*FullEnqueue=*/true, /*SketchDequeue=*/false},
             "ed(ed|ed)");

  // The combined sketch: Enqueue plus the Section 8 single-while-loop
  // Dequeue (tmp selection, prevHead advancement, taken-test swap).
  synthesize("Enqueue + Dequeue sketch (queueDE2)",
             QueueOptions{/*FullEnqueue=*/true, /*SketchDequeue=*/true},
             "ed(ed|ed)");
  return 0;
}
