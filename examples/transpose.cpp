//===- examples/transpose.cpp - the Section 3 SKETCH warm-up ---------------===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
// Section 3 recounts a SKETCH contest entry: a matrix transpose built
// from a SIMD semi-permute (shufps), sketched as two permutation stages
// with unknown sources, destinations and shuffle masks, resolved against
// the executable specification by input-driven CEGIS. This example
// reproduces that workflow at 2x2 scale with a 2-wide shuffle: the
// synthesizer must discover both stages' wiring from a space of ~27
// million candidates using only a handful of counterexample inputs.
//
//===----------------------------------------------------------------------===//

#include "cegis/Cegis.h"
#include "support/Rng.h"

#include <cstdio>

using namespace psketch;
using namespace psketch::ir;

namespace {

/// One sketched shuffle line: Dst[d::2] = shuf2(Src[s1::2-ish], Src[s2..],
/// b0, b1), where every operand is a hole. shuf2 semantics:
///   out[0] = Src[s1 + b0]; out[1] = Src[s2 + b1].
struct ShuffleLine {
  unsigned DstBase; ///< hole: 0 or 2
  unsigned Src1;    ///< hole: 0..2 (unaligned reads allowed, as in §3)
  unsigned Src2;    ///< hole: 0..2
  unsigned B0, B1;  ///< holes: 0..1

  static ShuffleLine make(Program &P, const std::string &Name) {
    ShuffleLine L;
    L.DstBase = P.addHole(Name + ".dst", 2);
    L.Src1 = P.addHole(Name + ".src1", 3);
    L.Src2 = P.addHole(Name + ".src2", 3);
    L.B0 = P.addHole(Name + ".b0", 2);
    L.B1 = P.addHole(Name + ".b1", 2);
    return L;
  }

  StmtRef emit(Program &P, unsigned Dst, unsigned Src) const {
    // dstIndex = 2*DstBase' where DstBase' in {0,1} encodes {0,2}.
    ExprRef DstIndex =
        P.add(P.holeValue(DstBase), P.holeValue(DstBase)); // 0 or 2
    ExprRef Lane0 = P.add(P.holeValue(Src1), P.holeValue(B0));
    ExprRef Lane1 = P.add(P.holeValue(Src2), P.holeValue(B1));
    return P.seq(
        {P.assign(P.locGlobalAt(Dst, DstIndex), P.globalAt(Src, Lane0)),
         P.assign(P.locGlobalAt(Dst, P.add(DstIndex, P.constInt(1))),
                  P.globalAt(Src, Lane1))});
  }
};

} // namespace

int main() {
  Program P;
  unsigned M = P.addGlobalArray("M", Type::Int, 4, 0);
  unsigned S = P.addGlobalArray("S", Type::Int, 4, 0);
  unsigned T = P.addGlobalArray("T", Type::Int, 4, 0);
  unsigned E = P.addGlobalArray("E", Type::Int, 4, 0); // expected output

  // Stage 1: two shuffles M -> S; stage 2: two shuffles S -> T.
  std::vector<StmtRef> Body;
  for (int Line = 0; Line < 2; ++Line)
    Body.push_back(
        ShuffleLine::make(P, "s1l" + std::to_string(Line)).emit(P, S, M));
  for (int Line = 0; Line < 2; ++Line)
    Body.push_back(
        ShuffleLine::make(P, "s2l" + std::to_string(Line)).emit(P, T, S));
  unsigned Thread = P.addThread("trans_sse");
  P.setRoot(BodyId::thread(Thread), P.seq(std::move(Body)));

  std::vector<StmtRef> Checks;
  for (int I = 0; I < 4; ++I)
    Checks.push_back(P.assertS(P.eq(P.globalAt(T, P.constInt(I)),
                                    P.globalAt(E, P.constInt(I))),
                               "T[" + std::to_string(I) + "] matches"));
  P.setRoot(BodyId::epilogue(), P.seq(std::move(Checks)));

  std::printf("2x2 shuffle-transpose sketch, |C| = %s\n",
              P.candidateSpaceSize().str().c_str());

  // The executable specification: trans(M)[2i+j] = M[2j+i]. Array globals
  // cannot be overridden directly, so inputs are pinned through scalar
  // aliases... simpler: enumerate small matrices as distinct-value test
  // vectors via per-element scalar override of the arrays' backing slots.
  // GlobalOverrides address scalars only, so we add four scalar input
  // globals copied into M by the prologue.
  unsigned In[4], Ex[4];
  std::vector<StmtRef> Pro;
  for (int I = 0; I < 4; ++I) {
    In[I] = P.addGlobal("in" + std::to_string(I), Type::Int, 0);
    Ex[I] = P.addGlobal("ex" + std::to_string(I), Type::Int, 0);
    Pro.push_back(
        P.assign(P.locGlobalAt(M, P.constInt(I)), P.global(In[I])));
    Pro.push_back(
        P.assign(P.locGlobalAt(E, P.constInt(I)), P.global(Ex[I])));
  }
  P.setRoot(BodyId::prologue(), P.seq(std::move(Pro)));

  // Test vectors: the distinct-value matrix plus random ones.
  std::vector<synth::GlobalOverrides> Tests;
  Rng R(7);
  for (int Vec = 0; Vec < 24; ++Vec) {
    int64_t Mv[4];
    for (int I = 0; I < 4; ++I)
      Mv[I] = Vec == 0 ? I + 1 : static_cast<int64_t>(R.below(100));
    synth::GlobalOverrides O;
    for (int I = 0; I < 4; ++I)
      O.push_back({In[I], Mv[I]});
    // trans: E[2i+j] = M[2j+i]
    for (int I = 0; I < 2; ++I)
      for (int J = 0; J < 2; ++J)
        O.push_back({Ex[2 * I + J], Mv[2 * J + I]});
    Tests.push_back(std::move(O));
  }

  cegis::CegisConfig Cfg;
  Cfg.Log = [](const std::string &Message) {
    std::printf("  %s\n", Message.c_str());
  };
  cegis::SequentialCegis C(P, Tests, Cfg);
  cegis::CegisResult Res = C.run();
  std::printf("resolvable=%s in %u iterations (%.2fs; Ssolve %.2f)\n",
              Res.Stats.Resolvable ? "yes" : "no", Res.Stats.Iterations,
              Res.Stats.TotalSeconds, Res.Stats.SsolveSeconds);
  if (!Res.Stats.Resolvable)
    return 1;

  std::printf("\nsynthesized shuffle wiring:\n");
  for (size_t I = 0; I < P.holes().size(); ++I)
    if (P.holes()[I].Name.find("l") != std::string::npos &&
        P.holes()[I].Name.find(".") != std::string::npos)
      std::printf("  %-10s = %llu\n", P.holes()[I].Name.c_str(),
                  static_cast<unsigned long long>(Res.Candidate[I]));
  return 0;
}
