//===- examples/dining_philosophers.cpp - Section 8.2.5 --------------------===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
// Synthesizes a chopstick-acquisition policy for the dining philosophers:
// a predicate over (philosopher, round) deciding which stick to grab
// first, plus the release order/targets. Deadlock freedom is property
// (1); everyone eating T times within the bounded run approximates
// property (2). The classic answer — the last philosopher reverses the
// acquisition order — is one of the policies in the space.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Dining.h"
#include "cegis/Cegis.h"

#include <cstdio>

using namespace psketch;
using namespace psketch::bench;

int main() {
  DiningOptions O;
  O.Philosophers = 4;
  O.Meals = 3;
  auto P = buildDining(O);
  std::printf("dinphilo N=%u T=%u, |C| = %s\n", O.Philosophers, O.Meals,
              P->candidateSpaceSize().str().c_str());

  cegis::CegisConfig Cfg;
  Cfg.Log = [](const std::string &Message) {
    std::printf("  %s\n", Message.c_str());
  };
  cegis::ConcurrentCegis C(*P, Cfg);
  cegis::CegisResult R = C.run();
  std::printf("resolvable=%s in %u iterations (%.2fs, %llu states "
              "explored)\n",
              R.Stats.Resolvable ? "yes" : "no", R.Stats.Iterations,
              R.Stats.TotalSeconds,
              static_cast<unsigned long long>(R.Stats.StatesExplored));
  if (!R.Stats.Resolvable)
    return 1;

  std::printf("\nsynthesized policy holes:\n");
  for (size_t I = 0; I < P->holes().size(); ++I)
    std::printf("  %-16s = %llu\n", P->holes()[I].Name.c_str(),
                static_cast<unsigned long long>(R.Candidate[I]));
  std::printf("\nresolved program:\n%s", C.printResolved(R).c_str());
  return 0;
}
