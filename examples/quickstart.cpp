//===- examples/quickstart.cpp - the public API in five minutes ------------===//
//
// Part of psketch-cpp, a reproduction of "Sketching Concurrent Data
// Structures" (PLDI 2008).
//
// Three small end-to-end runs:
//  1. a sequential `implements`-style sketch resolved by input-driven
//     CEGIS (Section 5's original SKETCH algorithm);
//  2. a concurrent sketch — two racing increments with a synthesized
//     locking decision — resolved by trace-driven CEGIS (Section 6);
//  3. the same sketch written in the textual mini-PSketch language.
//
//===----------------------------------------------------------------------===//

#include "cegis/Cegis.h"
#include "frontend/Parser.h"

#include <cstdio>

using namespace psketch;
using namespace psketch::ir;

/// Sequential sketch: out = (in + ??) wrapped at 8 bits must implement
/// the reference out = in + 42 on every test input.
static void sequentialQuickstart() {
  std::printf("== 1. Sequential CEGIS (observations are inputs) ==\n");
  Program P;
  unsigned In = P.addGlobal("in", Type::Int, 0);
  unsigned Out = P.addGlobal("out", Type::Int, 0);
  unsigned Expected = P.addGlobal("expected", Type::Int, 0);
  unsigned H = P.addHole("offset", 128);
  unsigned T = P.addThread("f");
  P.setRoot(BodyId::thread(T),
            P.assign(P.locGlobal(Out), P.add(P.global(In), P.holeValue(H))));
  P.setRoot(BodyId::epilogue(),
            P.assertS(P.eq(P.global(Out), P.global(Expected)),
                      "matches the reference"));

  // The reference implementation supplies the expected outputs.
  std::vector<synth::GlobalOverrides> Tests;
  for (int64_t X = -50; X <= 50; X += 7)
    Tests.push_back({{In, X}, {Expected, P.wrap(X + 42, Type::Int)}});

  cegis::SequentialCegis C(P, Tests);
  cegis::CegisResult R = C.run();
  std::printf("resolvable=%s after %u iterations; offset = %llu\n\n",
              R.Stats.Resolvable ? "yes" : "no", R.Stats.Iterations,
              R.Stats.Resolvable
                  ? static_cast<unsigned long long>(R.Candidate[H])
                  : 0ull);
}

/// Concurrent sketch: should the increment take the lock? The model
/// checker rejects the lock-free candidate with a counterexample trace;
/// one observation later the synthesizer proposes the locked variant.
static void concurrentQuickstart() {
  std::printf("== 2. Concurrent CEGIS (observations are traces) ==\n");
  Program P;
  unsigned X = P.addGlobal("x", Type::Int, 0);
  unsigned LK = P.addGlobal("lk", Type::Int, -1);
  unsigned H = P.addHole("useLock", 2);
  for (int T = 0; T < 2; ++T) {
    unsigned Id = P.addThread("incrementer");
    BodyId B = BodyId::thread(Id);
    unsigned Tmp = P.addLocal(B, "tmp", Type::Int, 0);
    ExprRef Pid = P.constInt(T);
    ExprRef UseLock = P.eq(P.holeValue(H), P.constInt(1));
    P.setRoot(
        B, P.seq({P.ifS(UseLock, P.lock(P.locGlobal(LK), P.global(LK), Pid)),
                  P.assign(P.locLocal(Tmp), P.global(X)),
                  P.assign(P.locGlobal(X),
                           P.add(P.local(Tmp, Type::Int), P.constInt(1))),
                  P.ifS(UseLock, P.unlock(P.locGlobal(LK), P.global(LK),
                                          Pid, "lock owner"))}));
  }
  P.setRoot(BodyId::epilogue(),
            P.assertS(P.eq(P.global(X), P.constInt(2)), "no lost update"));

  cegis::CegisConfig Cfg;
  Cfg.Log = [](const std::string &Message) {
    std::printf("  %s\n", Message.c_str());
  };
  cegis::ConcurrentCegis C(P, Cfg);
  cegis::CegisResult R = C.run();
  std::printf("resolvable=%s after %u iterations; useLock = %llu\n",
              R.Stats.Resolvable ? "yes" : "no", R.Stats.Iterations,
              R.Stats.Resolvable
                  ? static_cast<unsigned long long>(R.Candidate[H])
                  : 0ull);
  std::printf("resolved program:\n%s\n", C.printResolved(R).c_str());
}

/// The same concurrent sketch through the textual frontend.
static void frontendQuickstart() {
  std::printf("== 3. The textual mini-PSketch language ==\n");
  const char *Source = R"(
    global int x = 0;
    fork (i, 2) {
      var int tmp;
      // The synthesizer picks one of the two orderings; only
      // "read then write atomically" can keep the final assertion.
      atomic { tmp = x; x = tmp + {| 1 | 2 |}; }
    }
    epilogue { assert x == 2 : "both increments visible"; }
  )";
  frontend::ParseResult Parsed = frontend::parseProgram(Source);
  if (!Parsed.ok()) {
    std::printf("parse error: %s\n", Parsed.Error.c_str());
    return;
  }
  cegis::ConcurrentCegis C(*Parsed.Program);
  cegis::CegisResult R = C.run();
  std::printf("resolvable=%s after %u iterations\n",
              R.Stats.Resolvable ? "yes" : "no", R.Stats.Iterations);
  if (R.Stats.Resolvable)
    std::printf("resolved program:\n%s", C.printResolved(R).c_str());
}

int main() {
  sequentialQuickstart();
  concurrentQuickstart();
  frontendQuickstart();
  return 0;
}
